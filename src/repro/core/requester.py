"""The requester client (the off-chain half of Fig. 3, requester side).

Drives TaskPublish and Reward: derives the one-task address α_R,
predicts α_C, anonymously authenticates α_C‖α_R, deploys the task
contract with the budget, and later decrypts the collected answers
off-chain, evaluates the policy, and sends the proved instruction —
the outsource-then-prove methodology end to end.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro import observability as obs
from repro.crypto.hashing import sha256
from repro.errors import DecryptionError, ProtocolError
from repro.anonauth.keys import UserKeyPair
from repro.chain.address import contract_address
from repro.chain.receipts import Receipt
from repro.chain.transaction import Transaction, encode_call, encode_create
from repro.core.anonymity import OneTaskAccount, derive_one_task_account
from repro.core.encryption import (
    AnswerCiphertext,
    TaskKeyPair,
    decrypt_with_key,
    recover_answer_key,
)
from repro.core.params import TaskParameters
from repro.core.policy import Answer, RewardPolicy
from repro.core.protocol import (
    DEFAULT_GAS_LIMIT,
    DEFAULT_GAS_PRICE,
    TaskHandle,
    ZebraLancerSystem,
)
from repro.core.reward_circuit import (
    CiphertextEntry,
    build_reward_instance,
    padding_entry,
)
from repro.serialization import encode
from repro.anonauth.scheme import task_prefix


@dataclass
class _TaskRecord:
    """Requester-private per-task material."""

    account: OneTaskAccount
    encryption_keys: TaskKeyPair
    nonce: int  # next chain nonce for the one-task account


class Requester:
    """A registered requester."""

    def __init__(
        self, system: ZebraLancerSystem, identity: str, seed: Optional[bytes] = None
    ) -> None:
        self.system = system
        self.identity = identity
        self._seed = seed if seed is not None else sha256(b"requester", identity.encode())
        self.keys = UserKeyPair.generate(system.mimc, seed=self._seed + b"|id")
        self.certificate = system.register_participant(identity, self.keys.public_key)
        self._tasks: Dict[bytes, _TaskRecord] = {}
        self._task_counter = 0

    # ----- TaskPublish ---------------------------------------------------------------

    def publish_task(
        self,
        policy: RewardPolicy,
        description: str,
        num_answers: int,
        budget: int,
        answer_window: int = 10,
        instruction_window: int = 10,
        rsa_bits: int = 1024,
        submissions_per_worker: int = 1,
    ) -> TaskHandle:
        """Announce a task (deploying its contract with the budget)."""
        with obs.span(
            "requester.publish_task", requester=self.identity, answers=num_answers
        ):
            handle = self._publish_task(
                policy, description, num_answers, budget, answer_window,
                instruction_window, rsa_bits, submissions_per_worker,
            )
        return handle

    def _publish_task(
        self,
        policy: RewardPolicy,
        description: str,
        num_answers: int,
        budget: int,
        answer_window: int,
        instruction_window: int,
        rsa_bits: int,
        submissions_per_worker: int,
    ) -> TaskHandle:
        system = self.system
        label = f"{self.identity}/task-{self._task_counter}"
        self._task_counter += 1
        account = derive_one_task_account(self._seed, label)
        system.fund_anonymous(account.address)
        system.fund_anonymous(account.address, budget)

        rng = random.Random(
            int.from_bytes(sha256(self._seed, label.encode(), b"rsa"), "big")
        )
        encryption_keys = TaskKeyPair.generate(bits=rsa_bits, rng=rng)

        # α_C is predictable before deployment (footnote 10), so the
        # requester authenticates α_C ‖ α_R ahead of time.
        predicted_address = contract_address(account.address, nonce=0)
        certificate = system.current_certificate(self.keys.public_key)
        commitment = system.registry_commitment()
        attestation = system.scheme.auth(
            task_prefix(predicted_address) + account.address,
            self.keys,
            certificate,
            commitment,
        )

        circuit, reward_keys = system.reward_material(policy, num_answers)
        params = TaskParameters(
            description=description,
            num_answers=num_answers,
            budget=budget,
            answer_window=answer_window,
            instruction_window=instruction_window,
            policy_descriptor=dict(policy.describe()),
            answer_arity=policy.answer_arity,
            encryption_key_fingerprint=encryption_keys.public_key.fingerprint(),
            submissions_per_worker=submissions_per_worker,
        )
        epk_wire = encode(
            [encryption_keys.public_key.n, encryption_keys.public_key.e]
        )
        data = encode_create(
            "ZebraLancerTask",
            [
                system.registry_address,
                account.address,
                attestation.to_wire(),
                params.to_storage(),
                epk_wire,
                reward_keys.verifying_key,
            ],
        )
        tx = Transaction(
            nonce=0,
            gas_price=DEFAULT_GAS_PRICE,
            gas_limit=DEFAULT_GAS_LIMIT,
            to=None,
            value=budget,
            data=data,
        )
        receipt = system.send_reliable(tx, account.keypair)
        if not receipt.success or receipt.contract_address != predicted_address:
            raise ProtocolError(f"task deployment failed: {receipt.error}")
        self._tasks[predicted_address] = _TaskRecord(
            account=account, encryption_keys=encryption_keys, nonce=1
        )
        return TaskHandle(
            address=predicted_address, params=params, policy=policy, system=system
        )

    # ----- Reward -----------------------------------------------------------------------

    def decrypt_answers(
        self, handle: TaskHandle
    ) -> Tuple[List[Answer], List[int], List[int]]:
        """Fetch and decrypt the collected answers off-chain.

        Returns (answers with ⊥ as None, symmetric keys, ok flags).
        """
        record = self._record(handle)
        wires = self.system.node.call(handle.address, "get_ciphertexts")
        answers: List[Answer] = []
        keys: List[int] = []
        flags: List[int] = []
        mimc = self.system.mimc
        for wire in wires:
            ciphertext = AnswerCiphertext.from_wire(wire)
            try:
                key = recover_answer_key(record.encryption_keys, ciphertext, mimc)
            except DecryptionError:
                answers.append(None)
                keys.append(0)
                flags.append(0)
                continue
            answers.append(decrypt_with_key(key, ciphertext, mimc))
            keys.append(key)
            flags.append(1)
        return answers, keys, flags

    def evaluate_and_reward(self, handle: TaskHandle) -> Receipt:
        """Compute rewards per the policy, prove, and instruct the contract."""
        with obs.span(
            "protocol.reward", requester=self.identity, task=handle.address.hex()
        ) as reward_span:
            receipt = self._evaluate_and_reward(handle)
            reward_span.set_attrs(status=receipt.status)
        if obs.TRACER.enabled:
            obs.count("protocol.rewards")
        return receipt

    def _evaluate_and_reward(self, handle: TaskHandle) -> Receipt:
        system = self.system
        record = self._record(handle)
        answers, keys, flags = self.decrypt_answers(handle)
        if not answers:
            raise ProtocolError("no answers were collected; use finalize_timeout")
        wires = system.node.call(handle.address, "get_ciphertexts")
        entries = [
            CiphertextEntry.from_ciphertext(
                AnswerCiphertext.from_wire(wire), ok=bool(flag)
            )
            for wire, flag in zip(wires, flags)
        ]
        # Pad to the task's n: missing submissions become the paper's ⊥.
        n = handle.params.num_answers
        arity = handle.params.answer_arity
        while len(entries) < n:
            entries.append(padding_entry(arity))
            answers.append(None)
            keys.append(0)
            flags.append(0)
        instance = build_reward_instance(
            policy=handle.policy,
            budget=handle.params.budget,
            keys=keys,
            answers=answers,
            mimc=system.mimc,
            entries=entries,
        )
        circuit, reward_keys = system.reward_material(handle.policy, n)
        proof = system.backend.prove(reward_keys.proving_key, circuit, instance)
        data = encode_call(
            "submit_reward_instruction",
            [list(instance.rewards), flags, proof.backend, proof.payload],
        )
        tx = Transaction(
            nonce=record.nonce,
            gas_price=DEFAULT_GAS_PRICE,
            gas_limit=DEFAULT_GAS_LIMIT,
            to=handle.address,
            value=0,
            data=data,
        )
        record.nonce += 1
        return system.send_reliable(tx, record.account.keypair)

    def _record(self, handle: TaskHandle) -> _TaskRecord:
        record = self._tasks.get(handle.address)
        if record is None:
            raise ProtocolError("this requester did not publish that task")
        return record
