"""System orchestration: bootstrap and shared services.

:class:`ZebraLancerSystem` wires together every substrate exactly as
Fig. 3 draws it: the blockchain test net, the registration authority,
the SNARK establishments (done once, off-line, per circuit — Section
VI's "Establishments of zk-SNARKs"), and the on-chain registry
contract.  Requester/worker clients hang off this object.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro import observability as obs
from repro.crypto import ecdsa
from repro.crypto.hashing import sha256
from repro.errors import ProtocolError
from repro.profiles import SecurityProfile, get_profile
from repro.anonauth import AnonymousAuthScheme, RegistrationAuthority, setup as auth_setup
from repro.anonauth.authority import Certificate
from repro.chain.network import Testnet
from repro.chain.node import Node
from repro.chain.receipts import Receipt
from repro.chain.transaction import Transaction, encode_call, encode_create
from repro.core.params import TaskParameters
from repro.core.policy import RewardPolicy
from repro.core.reward_circuit import make_reward_circuit
from repro.zksnark.backend import CircuitDefinition, KeyPair, get_backend
from repro.zksnark.gadgets.mimc import MiMCParameters

DEFAULT_GAS_PRICE = 1
DEFAULT_GAS_LIMIT = 20_000_000
#: Gas allowance funded to each one-task account.
DEFAULT_GAS_ALLOWANCE = 50_000_000


@dataclass
class TaskHandle:
    """A client-side reference to a deployed task contract."""

    address: bytes
    params: TaskParameters
    policy: RewardPolicy
    system: "ZebraLancerSystem"

    def phase(self) -> str:
        return self.system.node.call(self.address, "get_phase")

    def answer_count(self) -> int:
        return self.system.node.call(self.address, "answer_count")

    def rewards(self) -> List[int]:
        return self.system.node.call(self.address, "get_rewards")

    def submitters(self) -> List[bytes]:
        return self.system.node.call(self.address, "get_submitters")

    def balance(self) -> int:
        return self.system.node.balance_of(self.address)

    def is_collection_closed(self) -> bool:
        return self.system.node.call(self.address, "is_collection_closed")

    def audit_submissions(self) -> bool:
        """Batch-re-verify every accepted submission's attestation."""
        with obs.span(
            "protocol.audit", task=self.address.hex(), answers=self.answer_count()
        ) as audit_span:
            result = self.system.node.call(self.address, "audit_submissions")
            audit_span.set_attrs(passed=bool(result))
        if obs.TRACER.enabled:
            obs.count("protocol.audits")
        return result


class ZebraLancerSystem:
    """One fully bootstrapped ZebraLancer deployment."""

    def __init__(
        self,
        profile: SecurityProfile | str = "test",
        cert_mode: str = "merkle",
        backend_name: str = "mock",
        miners: int = 2,
        full_nodes: int = 2,
        seed: bytes = b"zebralancer-system",
        testnet: Optional[Testnet] = None,
        fault_plan=None,
    ) -> None:
        self.profile = get_profile(profile) if isinstance(profile, str) else profile
        self.cert_mode = cert_mode
        self.backend_name = backend_name
        self.seed = seed
        self.backend = get_backend(backend_name)
        self.testnet = testnet or Testnet(
            miners=miners, full_nodes=full_nodes, fault_plan=fault_plan
        )

        # Off-line establishment of the Auth SNARK + RA keys.
        self.auth_params, self.authority = auth_setup(
            profile=self.profile,
            cert_mode=cert_mode,
            backend_name=backend_name,
            seed=sha256(seed, b"auth-setup"),
        )
        self.scheme = AnonymousAuthScheme(self.auth_params)

        # RA's chain identity and the on-chain registry contract.
        self._ra_key = ecdsa.ECDSAKeyPair.from_seed(sha256(seed, b"ra-chain-key"))
        # On a sharded chain the RA is a *replicated* sender: its
        # registry (and every registry update) must exist on all shards
        # because task and board contracts static-read it locally.
        fund_system = getattr(self.testnet, "fund_system", self.testnet.fund)
        fund_system(self._ra_key.address(), 10**24)
        self.registry_address = self._deploy_registry()

        # Reward-circuit establishments, cached per (policy, n).
        self._reward_material: Dict[Tuple[bytes, int], Tuple[CircuitDefinition, KeyPair]] = {}

    # ----- chain access ------------------------------------------------------------

    @property
    def node(self) -> Node:
        return self.testnet.any_node

    @property
    def mimc(self) -> MiMCParameters:
        return self.auth_params.mimc

    def mine(self, blocks: int = 1) -> None:
        self.testnet.mine_blocks(blocks)

    def fund_anonymous(
        self,
        address: bytes,
        amount: int = DEFAULT_GAS_ALLOWANCE,
        near: Optional[bytes] = None,
    ) -> None:
        """Fund a one-task account (stand-in for anonymous payments).

        ``near`` co-locates the account with the contract it will
        transact against on a sharded chain (one-task accounts live on
        their task's shard); ignored on a single chain.
        """
        self.testnet.fund(address, amount, near=near)

    def send_and_confirm(self, signed_tx) -> Receipt:
        """Confirm a pre-signed transaction (rebroadcast-only retries)."""
        return self.testnet.tx_sender.send_signed(signed_tx)

    def send_reliable(self, tx: Transaction, keypair) -> Receipt:
        """Confirm ``tx`` with the full retry discipline (gas bump +
        nonce re-check) — what every client should use on a lossy net."""
        return self.testnet.tx_sender.send(tx, keypair)

    # ----- registry ------------------------------------------------------------------

    def _ra_transaction(self, to: Optional[bytes], data: bytes) -> Transaction:
        return Transaction(
            nonce=self.testnet.tx_sender.nonces.reserve(self._ra_key.address()),
            gas_price=DEFAULT_GAS_PRICE,
            gas_limit=DEFAULT_GAS_LIMIT,
            to=to,
            value=0,
            data=data,
        )

    def _deploy_registry(self) -> bytes:
        data = encode_create(
            "ZebraLancerRegistry",
            [
                self.cert_mode,
                self.authority.registry_commitment(),
                self.auth_params.keys.verifying_key,
            ],
        )
        receipt = self.send_reliable(self._ra_transaction(None, data), self._ra_key)
        if not receipt.success or receipt.contract_address is None:
            raise ProtocolError(f"registry deployment failed: {receipt.error}")
        return receipt.contract_address

    def _publish_commitment(self) -> None:
        """Push the RA's current registry commitment on-chain."""
        data = encode_call(
            "update_commitment", [self.authority.registry_commitment()]
        )
        tx = self._ra_transaction(self.registry_address, data)
        receipt = self.send_reliable(tx, self._ra_key)
        if not receipt.success:
            raise ProtocolError(f"commitment update failed: {receipt.error}")

    def register_participant(self, identity: str, public_key: int) -> Certificate:
        """Register at the RA and publish the new commitment on-chain."""
        with obs.span("protocol.register", identity=identity):
            certificate = self.authority.register(identity, public_key)
            self._publish_commitment()
        if obs.TRACER.enabled:
            obs.count("protocol.registrations")
        return certificate

    def register_participants(
        self, entries: List[Tuple[str, int]]
    ) -> List[Certificate]:
        """Register many identities under ONE commitment update.

        The registry keeps its commitment history, so a single on-chain
        update covering the whole cohort is as good as one per
        registration — this is what lets the engine onboard N·(M+1)
        participants in one block instead of one block each.
        """
        with obs.span("protocol.register_batch", identities=len(entries)):
            certificates = [
                self.authority.register(identity, public_key)
                for identity, public_key in entries
            ]
            if entries:
                self._publish_commitment()
        if obs.TRACER.enabled:
            obs.count("protocol.registrations", len(entries))
        return certificates

    def current_certificate(self, public_key: int) -> Certificate:
        return self.authority.refresh_certificate(public_key)

    def registry_commitment(self) -> int:
        return self.node.call(self.registry_address, "get_commitment")

    # ----- reward SNARK establishments ---------------------------------------------------

    def reward_material(
        self, policy: RewardPolicy, n: int
    ) -> Tuple[CircuitDefinition, KeyPair]:
        """The (circuit, keys) for ``policy`` at ``n`` slots, set up once."""
        described = sorted(policy.describe().items())
        cache_key = (sha256(repr(described).encode()), n)
        material = self._reward_material.get(cache_key)
        if material is None:
            circuit = make_reward_circuit(policy, n, self.mimc)
            keys = self.backend.setup(
                circuit, seed=sha256(self.seed, b"reward", repr(described).encode(),
                                     n.to_bytes(4, "big"))
            )
            material = (circuit, keys)
            self._reward_material[cache_key] = material
        return material
