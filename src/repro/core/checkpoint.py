"""Durable engine checkpoints: the snapshot codec and its stores.

The chain is the durable half of the system — blocks, receipts and
contract state survive an engine crash because every node journals
them.  What does *not* survive is the engine's client-side state: which
phase each task's state machine is in, which transactions are still
in flight (and under which signing keys they must be retried), and the
shared nonce reservations.  :class:`EngineCheckpoint` captures exactly
that client-side state, versioned and checksummed, so a restarted
engine can re-poll receipts for the recorded transaction hashes,
re-derive every deterministic secret (one-task accounts, task RSA
keys) from the recorded identities, and converge to the same outcomes
with exactly-once payment.

Wire format::

    b"ZLCP" | version (1 byte) | canonical payload | sha256(prefix)

Truncation or corruption anywhere flips the trailing digest, so
:func:`decode_checkpoint` rejects damaged snapshots instead of
restoring from them (:class:`~repro.errors.CheckpointError`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.crypto import ecdsa
from repro.crypto.hashing import sha256
from repro.errors import CheckpointError
from repro.serialization import decode, encode
from repro.chain.transaction import Transaction
from repro.chain.txsender import PendingTx

CHECKPOINT_MAGIC = b"ZLCP"
CHECKPOINT_VERSION = 1
_DIGEST_LEN = 32


@dataclass
class PendingTxSnapshot:
    """One in-flight transaction, with enough material to retry it.

    ``private_key`` is the signer's scalar (0 when the key is unknown,
    e.g. an externally signed transaction) — a checkpoint is the
    engine's *own* private state, so persisting its signing keys is in
    scope; a deployment would encrypt the snapshot at rest.
    """

    nonce: int
    gas_price: int
    gas_limit: int
    to: Optional[bytes]
    value: int
    data: bytes
    chain_id: int
    private_key: int
    sender: bytes
    tx_hashes: List[bytes] = field(default_factory=list)
    broadcast_height: int = 0
    attempts: int = 1

    @classmethod
    def from_pending(cls, pending: PendingTx) -> "PendingTxSnapshot":
        tx = pending.transaction
        key = pending.keypair.private_key if pending.keypair is not None else 0
        return cls(
            nonce=tx.nonce,
            gas_price=tx.gas_price,
            gas_limit=tx.gas_limit,
            to=tx.to,
            value=tx.value,
            data=tx.data,
            chain_id=tx.chain_id,
            private_key=key,
            sender=pending.sender,
            tx_hashes=list(pending.tx_hashes),
            broadcast_height=pending.broadcast_height,
            attempts=pending.attempts,
        )

    def to_pending(self) -> PendingTx:
        tx = Transaction(
            nonce=self.nonce,
            gas_price=self.gas_price,
            gas_limit=self.gas_limit,
            to=self.to,
            value=self.value,
            data=self.data,
            chain_id=self.chain_id,
        )
        keypair = (
            ecdsa.ECDSAKeyPair(self.private_key) if self.private_key else None
        )
        return PendingTx(
            transaction=tx,
            keypair=keypair,
            sender=self.sender,
            tx_hashes=list(self.tx_hashes),
            broadcast_height=self.broadcast_height,
            attempts=self.attempts,
        )

    def to_obj(self) -> list:
        return [
            self.nonce, self.gas_price, self.gas_limit, self.to, self.value,
            self.data, self.chain_id, self.private_key, self.sender,
            list(self.tx_hashes), self.broadcast_height, self.attempts,
        ]

    @classmethod
    def from_obj(cls, obj: Sequence) -> "PendingTxSnapshot":
        (nonce, gas_price, gas_limit, to, value, data, chain_id,
         private_key, sender, tx_hashes, broadcast_height, attempts) = obj
        return cls(
            nonce=nonce, gas_price=gas_price, gas_limit=gas_limit, to=to,
            value=value, data=data, chain_id=chain_id,
            private_key=private_key, sender=sender,
            tx_hashes=list(tx_hashes), broadcast_height=broadcast_height,
            attempts=attempts,
        )


@dataclass
class TaskSnapshot:
    """One task's full state-machine snapshot.

    The spec half (identities, answers, policy descriptor) makes the
    checkpoint self-contained: clients re-derive their keys from the
    identity names, so nothing beyond this snapshot plus the live chain
    is needed to resume the task.
    """

    index: int
    state: str
    requester_identity: str
    worker_identities: List[str]
    answers: List[Optional[List[int]]]
    policy_descriptor: Dict
    description: str
    budget: int
    answer_window: int
    instruction_window: int
    rsa_bits: int
    audit: bool
    requester_mode: str
    equivocators: List[int]
    task_index: int
    address: bytes
    account_nonce: int
    phase_blocks: Dict[str, int]
    phase_times: Dict[str, int]
    rewards: List[int]
    status: str
    quarantined: bool
    quarantine_reason: str
    wave: List[PendingTxSnapshot] = field(default_factory=list)
    byzantine_wave: List[PendingTxSnapshot] = field(default_factory=list)
    failures: int = 0
    #: True when ``wave`` is an in-flight finalize_timeout settlement
    #: (a restored runner must not misread an old phase's confirmed
    #: wave as a settlement receipt).
    settling: bool = False

    def to_obj(self) -> list:
        return [
            self.index, self.state, self.requester_identity,
            list(self.worker_identities),
            [list(a) if a is not None else None for a in self.answers],
            dict(self.policy_descriptor), self.description, self.budget,
            self.answer_window, self.instruction_window, self.rsa_bits,
            int(self.audit), self.requester_mode, list(self.equivocators),
            self.task_index, self.address, self.account_nonce,
            dict(self.phase_blocks), dict(self.phase_times),
            list(self.rewards), self.status, int(self.quarantined),
            self.quarantine_reason,
            [p.to_obj() for p in self.wave],
            [p.to_obj() for p in self.byzantine_wave],
            self.failures,
            int(self.settling),
        ]

    @classmethod
    def from_obj(cls, obj: Sequence) -> "TaskSnapshot":
        (index, state, requester_identity, worker_identities, answers,
         policy_descriptor, description, budget, answer_window,
         instruction_window, rsa_bits, audit, requester_mode, equivocators,
         task_index, address, account_nonce, phase_blocks, phase_times,
         rewards, status, quarantined, quarantine_reason, wave,
         byzantine_wave, failures, settling) = obj
        return cls(
            index=index,
            state=state,
            requester_identity=requester_identity,
            worker_identities=list(worker_identities),
            answers=[list(a) if a is not None else None for a in answers],
            policy_descriptor=dict(policy_descriptor),
            description=description,
            budget=budget,
            answer_window=answer_window,
            instruction_window=instruction_window,
            rsa_bits=rsa_bits,
            audit=bool(audit),
            requester_mode=requester_mode,
            equivocators=list(equivocators),
            task_index=task_index,
            address=address,
            account_nonce=account_nonce,
            phase_blocks=dict(phase_blocks),
            phase_times=dict(phase_times),
            rewards=list(rewards),
            status=status,
            quarantined=bool(quarantined),
            quarantine_reason=quarantine_reason,
            wave=[PendingTxSnapshot.from_obj(p) for p in wave],
            byzantine_wave=[PendingTxSnapshot.from_obj(p) for p in byzantine_wave],
            failures=failures,
            settling=bool(settling),
        )


@dataclass
class EngineCheckpoint:
    """Everything a restarted engine needs beyond the chain itself."""

    round: int
    head_height: int
    head_hash: bytes
    nonce_reservations: Dict[bytes, int]
    janitor_key: int
    tasks: List[TaskSnapshot] = field(default_factory=list)
    #: Engine-level tallies that must survive a restart (e.g. the
    #: byzantine accept/reject gate counts from before the crash).
    counters: Dict[str, int] = field(default_factory=dict)
    version: int = CHECKPOINT_VERSION

    def to_obj(self) -> list:
        return [
            self.round, self.head_height, self.head_hash,
            dict(self.nonce_reservations), self.janitor_key,
            [t.to_obj() for t in self.tasks],
            dict(self.counters),
        ]

    @classmethod
    def from_obj(cls, obj: Sequence, version: int) -> "EngineCheckpoint":
        (round_, head_height, head_hash, nonce_reservations, janitor_key,
         tasks, counters) = obj
        return cls(
            round=round_,
            head_height=head_height,
            head_hash=head_hash,
            nonce_reservations=dict(nonce_reservations),
            janitor_key=janitor_key,
            tasks=[TaskSnapshot.from_obj(t) for t in tasks],
            counters=dict(counters),
            version=version,
        )


def encode_checkpoint(checkpoint: EngineCheckpoint) -> bytes:
    """Serialize a checkpoint: magic + version + payload + sha256."""
    try:
        payload = encode(checkpoint.to_obj())
    except (TypeError, ValueError) as exc:
        raise CheckpointError(f"unencodable checkpoint: {exc}") from exc
    body = CHECKPOINT_MAGIC + bytes([checkpoint.version]) + payload
    return body + sha256(body)


def decode_checkpoint(data: bytes) -> EngineCheckpoint:
    """Parse and validate a checkpoint; rejects any damage loudly."""
    if not isinstance(data, (bytes, bytearray)):
        raise CheckpointError("checkpoint must be bytes")
    data = bytes(data)
    minimum = len(CHECKPOINT_MAGIC) + 1 + _DIGEST_LEN
    if len(data) < minimum:
        raise CheckpointError("checkpoint truncated")
    if not data.startswith(CHECKPOINT_MAGIC):
        raise CheckpointError("bad checkpoint magic")
    body, digest = data[:-_DIGEST_LEN], data[-_DIGEST_LEN:]
    if sha256(body) != digest:
        raise CheckpointError("checkpoint checksum mismatch")
    version = body[len(CHECKPOINT_MAGIC)]
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(f"unsupported checkpoint version {version}")
    payload = body[len(CHECKPOINT_MAGIC) + 1:]
    try:
        obj = decode(payload)
        checkpoint = EngineCheckpoint.from_obj(obj, version)
    except (ValueError, TypeError, IndexError) as exc:
        raise CheckpointError(f"malformed checkpoint payload: {exc}") from exc
    return checkpoint


class CheckpointStore:
    """An in-memory ring of the ``keep`` most recent snapshots."""

    def __init__(self, keep: int = 4) -> None:
        if keep < 1:
            raise CheckpointError("a store must keep at least one snapshot")
        self.keep = keep
        self._snapshots: List[bytes] = []
        self.saves = 0

    def save(self, data: bytes) -> None:
        self._snapshots.append(bytes(data))
        self.saves += 1
        if len(self._snapshots) > self.keep:
            self._snapshots = self._snapshots[-self.keep:]

    def latest(self) -> Optional[bytes]:
        return self._snapshots[-1] if self._snapshots else None

    def __len__(self) -> int:
        return len(self._snapshots)


class FileCheckpointStore(CheckpointStore):
    """A store that also persists the latest snapshot to one file.

    Writes go to ``<path>.tmp`` first and are renamed into place, so a
    crash mid-write leaves the previous checkpoint intact (the decode
    checksum catches a torn ``.tmp`` that was never renamed).
    """

    def __init__(self, path, keep: int = 4) -> None:
        super().__init__(keep=keep)
        import pathlib

        self.path = pathlib.Path(path)

    def save(self, data: bytes) -> None:
        super().save(data)
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        tmp.write_bytes(data)
        tmp.replace(self.path)

    def latest(self) -> Optional[bytes]:
        in_memory = super().latest()
        if in_memory is not None:
            return in_memory
        if self.path.exists():
            return self.path.read_bytes()
        return None
