"""The reward-instruction statement (the paper's language L).

The requester proves, in zero knowledge, that the reward vector R was
computed by (i) opening each on-chain ciphertext with the key committed
by the submitting worker and (ii) applying the announced policy to the
decrypted answers.  Public statement layout (shared verbatim by the
task contract, the prover, and the circuits):

    [ budget τ, reward_unit u,
      for each slot j: key_commitment h_j, nonce_j, body_j…, ok_j,
      for each slot j: R_j ]

``ok_j`` is the requester's public malformed-submission flag: a slot
whose OAEP key blob does not open the commitment cannot be decrypted
(and therefore cannot be proved); flagging it exempts the slot from the
decryption constraints, forfeits its reward, and — to kill any
incentive to flag honest answers — the task contract *burns* the
slot's share instead of refunding it (see ``contracts/task.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import PolicyError, ProofError
from repro.serialization import encode
from repro.zksnark.backend import CircuitDefinition
from repro.zksnark.circuit import ConstraintSystem
from repro.zksnark.field import BN128_SCALAR_FIELD
from repro.zksnark.gadgets.arithmetic import conditional_select, enforce_one_hot
from repro.zksnark.gadgets.boolean import (
    assert_less_than_constant,
    is_equal,
    number_to_bits,
)
from repro.zksnark.gadgets.mimc import (
    MiMCParameters,
    mimc_encrypt,
    mimc_hash,
)
from repro.core.encryption import AnswerCiphertext, keystream_element
from repro.core.policy import Answer, MajorityVotePolicy, RewardPolicy

_P = BN128_SCALAR_FIELD


@dataclass(frozen=True)
class CiphertextEntry:
    """The public, in-statement part of one submission slot."""

    key_commitment: int
    nonce: int
    body: Tuple[int, ...]
    ok: int  # 1 = provably decryptable, 0 = flagged malformed

    @classmethod
    def from_ciphertext(cls, ciphertext: AnswerCiphertext, ok: bool) -> "CiphertextEntry":
        return cls(
            key_commitment=ciphertext.key_commitment,
            nonce=ciphertext.nonce,
            body=ciphertext.body,
            ok=1 if ok else 0,
        )


@dataclass(frozen=True)
class RewardInstance:
    """Statement + witness for one reward instruction."""

    budget: int
    reward_unit: int
    entries: Tuple[CiphertextEntry, ...]
    rewards: Tuple[int, ...]
    keys: Tuple[int, ...]  # witness: symmetric keys (0 for flagged slots)

    def __post_init__(self) -> None:
        if not (len(self.entries) == len(self.rewards) == len(self.keys)):
            raise PolicyError("entries, rewards and keys must align")


def padding_entry(arity: int) -> CiphertextEntry:
    """The canonical ⊥ slot: a flagged, all-zero entry.

    Used to pad a statement out to the task's n when fewer submissions
    arrived by the deadline ("the requester simply sets the remaining
    answers to ⊥").
    """
    return CiphertextEntry(key_commitment=0, nonce=0, body=(0,) * arity, ok=0)


def reward_statement(
    budget: int,
    reward_unit: int,
    entries: Sequence[CiphertextEntry],
    rewards: Sequence[int],
) -> List[int]:
    """The canonical public-input vector (contract & prover agree on this)."""
    statement: List[int] = [budget, reward_unit]
    for entry in entries:
        statement.extend([entry.key_commitment, entry.nonce, *entry.body, entry.ok])
    statement.extend(int(r) for r in rewards)
    return statement


def _synthesize_decryption(
    cs: ConstraintSystem,
    instance: RewardInstance,
    mimc: MiMCParameters,
    arity: int,
):
    """Shared front half: allocate publics, open commitments, decrypt.

    Returns (tau, unit, entry wire bundles, reward wires, answer LC lists).
    """
    tau = cs.alloc_public(instance.budget)
    unit = cs.alloc_public(instance.reward_unit)
    entry_wires = []
    for entry in instance.entries:
        if len(entry.body) != arity:
            raise PolicyError("ciphertext arity does not match the policy")
        h = cs.alloc_public(entry.key_commitment)
        nonce = cs.alloc_public(entry.nonce)
        body = [cs.alloc_public(c) for c in entry.body]
        ok = cs.alloc_public(entry.ok)
        entry_wires.append((h, nonce, body, ok))
    reward_wires = [cs.alloc_public(r) for r in instance.rewards]

    answers = []
    for (h, nonce, body, ok), key_value in zip(entry_wires, instance.keys):
        cs.enforce_boolean(ok, annotation="ok flag")
        key = cs.alloc(key_value)
        computed_commitment = mimc_hash(cs, [key], mimc)
        cs.enforce(
            computed_commitment - h, ok, cs.constant(0),
            annotation="key opens on-chain commitment (when ok)",
        )
        slot_answers = []
        for index, cipher_wire in enumerate(body):
            keystream = mimc_encrypt(cs, key, nonce + index, mimc)
            slot_answers.append(cipher_wire - keystream)
        answers.append(slot_answers)
    return tau, unit, entry_wires, reward_wires, answers


class MajorityRewardCircuit(CircuitDefinition):
    """R1CS compilation of :class:`MajorityVotePolicy` for n slots.

    Inside the circuit: flagged slots decrypt to the out-of-range
    sentinel ``K`` (no vote, no reward); the majority value enters as a
    one-hot witness whose maximality (with lowest-value tie-break) is
    enforced by range-checked count differences; each reward is
    ``correct_j · u`` with ``u = ⌊τ/n⌋`` enforced via the remainder
    range check.
    """

    def __init__(self, n: int, policy: MajorityVotePolicy, mimc: MiMCParameters) -> None:
        if n < 1:
            raise PolicyError("need at least one slot")
        self.n = n
        self.policy = policy
        self.mimc = mimc
        self.name = f"majority-reward-n{n}-k{policy.num_choices}"

    def extra_digest(self) -> bytes:
        return encode(["majority-reward", self.n, self.policy.num_choices])

    def example_instance(self) -> RewardInstance:
        keys = [j + 1 for j in range(self.n)]
        answers: List[Answer] = [[0] for _ in range(self.n)]
        budget = 10 * self.n
        return build_reward_instance(
            policy=self.policy,
            budget=budget,
            keys=keys,
            answers=answers,
            mimc=self.mimc,
            nonces=[100 + j for j in range(self.n)],
        )

    def public_inputs(self, instance: RewardInstance) -> List[int]:
        return reward_statement(
            instance.budget, instance.reward_unit, instance.entries, instance.rewards
        )

    def synthesize(self, cs: ConstraintSystem, instance: RewardInstance) -> None:
        num_choices = self.policy.num_choices
        tau, unit, entry_wires, reward_wires, answers = _synthesize_decryption(
            cs, instance, self.mimc, arity=1
        )
        # u = floor(tau / n): 0 <= tau - n*u < n.
        remainder = tau - unit * self.n
        remainder_bits = number_to_bits(cs, remainder, max(self.n.bit_length(), 1))
        assert_less_than_constant(cs, remainder_bits, self.n)

        # Effective answer: the decrypted value, or the sentinel K when flagged.
        sentinel = num_choices
        effective = []
        for (h, nonce, body, ok), slot_answers in zip(entry_wires, answers):
            effective.append(
                conditional_select(cs, ok, slot_answers[0], cs.constant(sentinel))
            )

        # Vote matrix and per-choice counts.
        eq_flags = [
            [is_equal(cs, answer, choice) for choice in range(num_choices)]
            for answer in effective
        ]
        counts = []
        for choice in range(num_choices):
            total = cs.constant(0)
            for j in range(self.n):
                total = total + eq_flags[j][choice]
            counts.append(total)

        # One-hot majority witness (lowest-value tie-break, as native policy).
        native_counts = [c.value for c in counts]
        majority = (
            native_counts.index(max(native_counts)) if any(native_counts) else 0
        )
        flags = []
        for choice in range(num_choices):
            flag = cs.alloc(1 if choice == majority else 0)
            cs.enforce_boolean(flag, annotation=f"majority flag {choice}")
            flags.append(flag)
        enforce_one_hot(cs, flags)

        majority_count = cs.constant(0)
        for flag, count in zip(flags, counts):
            majority_count = majority_count + cs.mul(flag, count, "flagged count")

        # Maximality with tie-break: for every k, counts[k] + [k before m] <= counts[m].
        count_bits = max((self.n).bit_length(), 1) + 1
        for choice in range(num_choices):
            is_before = cs.constant(0)
            for later in range(choice + 1, num_choices):
                is_before = is_before + flags[later]
            difference = majority_count - counts[choice] - is_before
            number_to_bits(cs, difference, count_bits)

        # R_j = (answer_j == majority) * u.
        for j in range(self.n):
            correct = cs.constant(0)
            for choice in range(num_choices):
                correct = correct + cs.mul(
                    flags[choice], eq_flags[j][choice], "correctness term"
                )
            cs.enforce(correct, unit, reward_wires[j], annotation=f"reward {j}")


class OraclePolicyCircuit(CircuitDefinition):
    """Generic reward statement for policies without an R1CS compilation.

    The decryption/commitment half is real R1CS; the policy evaluation
    itself is a native predicate, so this circuit only runs under the
    ideal-functionality backend (``requires_ideal_backend``).
    """

    requires_ideal_backend = True

    def __init__(self, n: int, policy: RewardPolicy, mimc: MiMCParameters) -> None:
        if n < 1:
            raise PolicyError("need at least one slot")
        self.n = n
        self.policy = policy
        self.mimc = mimc
        self.name = f"oracle-reward-{policy.name}-n{n}"

    def extra_digest(self) -> bytes:
        described = sorted(self.policy.describe().items())
        return encode(["oracle-reward", self.n, [[k, v] for k, v in described]])

    def example_instance(self) -> RewardInstance:
        keys = [j + 1 for j in range(self.n)]
        answers: List[Answer] = [[0] * self.policy.answer_arity for _ in range(self.n)]
        return build_reward_instance(
            policy=self.policy,
            budget=10 * self.n,
            keys=keys,
            answers=answers,
            mimc=self.mimc,
            nonces=[100 + j for j in range(self.n)],
        )

    def public_inputs(self, instance: RewardInstance) -> List[int]:
        return reward_statement(
            instance.budget, instance.reward_unit, instance.entries, instance.rewards
        )

    def synthesize(self, cs: ConstraintSystem, instance: RewardInstance) -> None:
        _synthesize_decryption(cs, instance, self.mimc, arity=self.policy.answer_arity)

    def native_checks(self, instance: RewardInstance) -> None:
        answers = decrypt_instance_answers(instance, self.mimc)
        expected = self.policy.compute_rewards(answers, instance.budget)
        if tuple(expected) != tuple(instance.rewards):
            raise ProofError(
                f"reward vector does not follow policy {self.policy.name}"
            )
        if instance.reward_unit != instance.budget // self.n:
            raise ProofError("reward unit must be floor(budget / n)")


def decrypt_instance_answers(
    instance: RewardInstance, mimc: MiMCParameters
) -> List[Answer]:
    """Native decryption of an instance's slots (⊥ for flagged ones)."""
    answers: List[Answer] = []
    for entry, key in zip(instance.entries, instance.keys):
        if not entry.ok:
            answers.append(None)
            continue
        answers.append(
            [
                (c - keystream_element(key, entry.nonce, i, mimc)) % _P
                for i, c in enumerate(entry.body)
            ]
        )
    return answers


def build_reward_instance(
    policy: RewardPolicy,
    budget: int,
    keys: Sequence[int],
    answers: Sequence[Answer],
    mimc: MiMCParameters,
    nonces: Optional[Sequence[int]] = None,
    entries: Optional[Sequence[CiphertextEntry]] = None,
    rewards: Optional[Sequence[int]] = None,
) -> RewardInstance:
    """Assemble a consistent instance.

    When ``entries`` is omitted (tests, examples) the ciphertext bodies
    are synthesized from the given answers and keys; a ``None`` answer
    becomes a flagged slot.  ``rewards`` defaults to the policy's
    native evaluation.
    """
    from repro.zksnark.gadgets.mimc import mimc_hash_native

    n = len(answers)
    if len(keys) != n:
        raise PolicyError("one key per answer slot required")
    if entries is None:
        if nonces is None:
            nonces = [1000 + j for j in range(n)]
        built = []
        for j, answer in enumerate(answers):
            if answer is None:
                built.append(
                    CiphertextEntry(
                        key_commitment=0,
                        nonce=nonces[j],
                        body=tuple([0] * policy.answer_arity),
                        ok=0,
                    )
                )
                continue
            body = tuple(
                (value + keystream_element(keys[j], nonces[j], i, mimc)) % _P
                for i, value in enumerate(answer)
            )
            built.append(
                CiphertextEntry(
                    key_commitment=mimc_hash_native([keys[j]], mimc),
                    nonce=nonces[j],
                    body=body,
                    ok=1,
                )
            )
        entries = built
    if rewards is None:
        rewards = policy.compute_rewards(answers, budget)
    return RewardInstance(
        budget=budget,
        reward_unit=budget // n,
        entries=tuple(entries),
        rewards=tuple(int(r) for r in rewards),
        keys=tuple(int(k) for k in keys),
    )


def make_reward_circuit(
    policy: RewardPolicy, n: int, mimc: MiMCParameters
) -> CircuitDefinition:
    """The right circuit for a policy: compiled R1CS or oracle shell."""
    if isinstance(policy, MajorityVotePolicy):
        return MajorityRewardCircuit(n, policy, mimc)
    return OraclePolicyCircuit(n, policy, mimc)
