"""Adversarial actors.

Each class drives a concrete attack from the paper's threat analysis
(Section V-C) against a live system, so tests and examples can show the
attack *executing* and the defence *holding*:

- :class:`FreeRiderWorker` — watches the public mempool, copies a
  victim's broadcast ciphertext and resubmits it as his own;
- :class:`MultiSubmissionWorker` — one identity, many one-task
  addresses, multiple answers to one task;
- :class:`FalseReportingRequester` — tries to underpay via a cheating
  instruction, a forged proof, or by stonewalling;
- :class:`SelfColludingRequester` — submits an answer to her own task
  to downgrade the workers' majority.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.crypto.hashing import sha256
from repro.errors import ProofError, ProtocolError, UnsatisfiedConstraintError
from repro.chain.receipts import Receipt
from repro.chain.transaction import Transaction, encode_call
from repro.serialization import decode
from repro.anonauth.scheme import task_prefix
from repro.core.anonymity import derive_one_task_account
from repro.core.encryption import AnswerCiphertext
from repro.core.protocol import DEFAULT_GAS_LIMIT, DEFAULT_GAS_PRICE, TaskHandle
from repro.core.requester import Requester
from repro.core.reward_circuit import CiphertextEntry, build_reward_instance
from repro.core.worker import Worker


class FreeRiderWorker(Worker):
    """A registered but lazy worker who plagiarizes from the mempool.

    The blockchain broadcasts submissions before they are mined, so the
    free-rider can read a victim's ciphertext in flight.  Because
    answers are encrypted he cannot learn or re-randomize the content —
    his only move is a verbatim copy, which he *can* authenticate (he
    holds a valid certificate).  The task contract's duplicate check
    (the "independence" requirement) rejects it.
    """

    def steal_pending_ciphertext(self, task_address: bytes) -> Optional[bytes]:
        """Grab a pending submit_answer ciphertext for the task, if any."""
        for stx in self.system.testnet.network.pending_transactions():
            if stx.transaction.to != task_address or not stx.transaction.data:
                continue
            try:
                kind, method, args = decode(stx.transaction.data)
            except ValueError:
                continue
            if kind == "call" and method == "submit_answer":
                return args[0]
        return None

    def submit_copied_ciphertext(
        self, task_address: bytes, ciphertext_wire: bytes
    ) -> Receipt:
        """Resubmit someone else's ciphertext under a fresh valid attestation."""
        system = self.system
        account = derive_one_task_account(self._seed, f"task:{task_address.hex()}")
        system.fund_anonymous(account.address, near=task_address)
        certificate = system.current_certificate(self.keys.public_key)
        commitment = system.registry_commitment()
        message = task_prefix(task_address) + account.address + ciphertext_wire
        attestation = system.scheme.auth(message, self.keys, certificate, commitment)
        data = encode_call("submit_answer", [ciphertext_wire, attestation.to_wire()])
        tx = Transaction(
            nonce=system.node.nonce_of(account.address),
            gas_price=DEFAULT_GAS_PRICE + 1,  # try to front-run the victim
            gas_limit=DEFAULT_GAS_LIMIT,
            to=task_address,
            value=0,
            data=data,
        )
        return system.send_and_confirm(tx.sign(account.keypair))

    def replay_raw_transaction(self, victim_tx) -> bool:
        """Re-broadcast the victim's exact signed transaction.

        Returns True if the network accepted it as *new* traffic —
        which it never does: the replay is byte-identical (same hash,
        same nonce), so it cannot create a second submission.
        """
        node = self.system.node
        before = node.mempool.contains(victim_tx.tx_hash)
        self.system.testnet.send_transaction(victim_tx)
        return not before and node.mempool.contains(victim_tx.tx_hash)


class MultiSubmissionWorker(Worker):
    """Submits k > 1 answers to one task from unlinkable fresh addresses."""

    def submit_many(
        self, handle: TaskHandle, answers: Sequence[Sequence[int]]
    ) -> List[Receipt]:
        """Attempt every submission; returns all receipts (reverts included)."""
        receipts = []
        system = self.system
        task_address = handle.address
        for attempt, answer_fields in enumerate(answers):
            account = derive_one_task_account(
                self._seed, f"task:{task_address.hex()}:sybil-{attempt}"
            )
            system.fund_anonymous(account.address, near=task_address)
            epk = self.read_task_epk(task_address)
            rng = random.Random(attempt + 7)
            from repro.core.encryption import encrypt_answer

            ciphertext = encrypt_answer(epk, list(answer_fields), system.mimc, rng)
            wire = ciphertext.to_wire()
            certificate = system.current_certificate(self.keys.public_key)
            commitment = system.registry_commitment()
            attestation = system.scheme.auth(
                task_prefix(task_address) + account.address + wire,
                self.keys,
                certificate,
                commitment,
            )
            data = encode_call("submit_answer", [wire, attestation.to_wire()])
            tx = Transaction(
                nonce=system.node.nonce_of(account.address),
                gas_price=DEFAULT_GAS_PRICE,
                gas_limit=DEFAULT_GAS_LIMIT,
                to=task_address,
                value=0,
                data=data,
            )
            receipts.append(system.send_and_confirm(tx.sign(account.keypair)))
        return receipts


def prepare_equivocation(
    worker: Worker,
    handle: TaskHandle,
    answer_fields: Sequence[int],
    attempt: int = 1,
):
    """Build (but do not send) an equivocating second submission.

    The engine-scale variant of :class:`MultiSubmissionWorker`: a
    worker who already submitted honestly signs a *conflicting* answer
    from a fresh sybil one-task address.  Returns ``(account, tx)`` so
    a scheduler can fund the sybil address in its normal worker wave
    and broadcast the transaction asynchronously — the contract's Link
    check must revert it while the honest sibling submission lands.
    """
    system = worker.system
    task_address = handle.address
    account = derive_one_task_account(
        worker._seed, f"task:{task_address.hex()}:equivocate-{attempt}"
    )
    epk = worker.read_task_epk(task_address)
    rng = random.Random(
        int.from_bytes(
            sha256(b"equivocate", task_address, attempt.to_bytes(4, "big")), "big"
        )
    )
    from repro.core.encryption import encrypt_answer

    ciphertext = encrypt_answer(epk, list(answer_fields), system.mimc, rng)
    wire = ciphertext.to_wire()
    certificate = system.current_certificate(worker.keys.public_key)
    commitment = system.registry_commitment()
    attestation = system.scheme.auth(
        task_prefix(task_address) + account.address + wire,
        worker.keys,
        certificate,
        commitment,
    )
    data = encode_call("submit_answer", [wire, attestation.to_wire()])
    tx = Transaction(
        nonce=0,  # fresh one-task account: first and only transaction
        gas_price=DEFAULT_GAS_PRICE,
        gas_limit=DEFAULT_GAS_LIMIT,
        to=task_address,
        value=0,
        data=data,
    )
    return account, tx


class FalseReportingRequester(Requester):
    """A requester who tries every way to not pay what the policy owes."""

    def attempt_cheating_instruction(
        self, handle: TaskHandle, rewards: Sequence[int]
    ) -> str:
        """Try to push an arbitrary reward vector.

        Returns a short outcome string: the SNARK prover refuses to
        certify a false instruction, and a proof borrowed from another
        statement is rejected on-chain.
        """
        system = self.system
        answers, keys, flags = self.decrypt_answers(handle)
        count = len(answers)
        wires = system.node.call(handle.address, "get_ciphertexts")
        entries = [
            CiphertextEntry.from_ciphertext(
                AnswerCiphertext.from_wire(wire), ok=bool(flag)
            )
            for wire, flag in zip(wires, flags)
        ]
        try:
            instance = build_reward_instance(
                policy=handle.policy,
                budget=handle.params.budget,
                keys=keys,
                answers=answers,
                mimc=system.mimc,
                entries=entries,
                rewards=list(rewards),
            )
            circuit, reward_keys = system.reward_material(handle.policy, count)
            system.backend.prove(reward_keys.proving_key, circuit, instance)
        except (ProofError, UnsatisfiedConstraintError):
            return "prover-refused"
        return "proof-produced"  # would indicate a soundness break

    def attempt_forged_proof(
        self, handle: TaskHandle, rewards: Sequence[int]
    ) -> Receipt:
        """Send a garbage proof with a cheating reward vector on-chain."""
        system = self.system
        record = self._record(handle)
        count = len(system.node.call(handle.address, "get_ciphertexts"))
        fake_payload = sha256(b"forged", bytes(8)) * 8
        data = encode_call(
            "submit_reward_instruction",
            [list(rewards), [1] * count, system.backend_name, fake_payload[:256]],
        )
        tx = Transaction(
            nonce=record.nonce,
            gas_price=DEFAULT_GAS_PRICE,
            gas_limit=DEFAULT_GAS_LIMIT,
            to=handle.address,
            value=0,
            data=data,
        )
        record.nonce += 1
        return system.send_and_confirm(tx.sign(record.account.keypair))

    def stonewall(self, handle: TaskHandle) -> None:
        """Simply never send an instruction (the contract's timeout bites)."""


class SelfColludingRequester(Requester):
    """Tries to downgrade workers by answering her own task.

    She holds exactly one certified identity; her requester attestation
    π_R already sits in the task's Link pool with the same prefix α_C,
    so any answer she authenticates herself links to π_R and is dropped
    (Algorithm 1 line 8, ``Link(π_i, π_R)``).
    """

    def attempt_colluding_answer(
        self, handle: TaskHandle, answer_fields: Sequence[int]
    ) -> Receipt:
        system = self.system
        task_address = handle.address
        account = derive_one_task_account(self._seed, f"collude:{task_address.hex()}")
        system.fund_anonymous(account.address, near=task_address)
        epk_wire = system.node.call(task_address, "get_epk")
        from repro.crypto.rsa import RSAPublicKey
        from repro.core.encryption import encrypt_answer

        n, e = decode(epk_wire)
        epk = RSAPublicKey(n=n, e=e)
        ciphertext = encrypt_answer(
            epk, list(answer_fields), system.mimc, random.Random(99)
        )
        wire = ciphertext.to_wire()
        certificate = system.current_certificate(self.keys.public_key)
        commitment = system.registry_commitment()
        attestation = system.scheme.auth(
            task_prefix(task_address) + account.address + wire,
            self.keys,
            certificate,
            commitment,
        )
        data = encode_call("submit_answer", [wire, attestation.to_wire()])
        tx = Transaction(
            nonce=system.node.nonce_of(account.address),
            gas_price=DEFAULT_GAS_PRICE,
            gas_limit=DEFAULT_GAS_LIMIT,
            to=task_address,
            value=0,
            data=data,
        )
        return system.send_and_confirm(tx.sign(account.keypair))


class BidSniper(Worker):
    """Watches a listing's open bid pool, then underbids after the close.

    Bids are public the moment they land, so a sniper CAN observe every
    (tag, stake) pair and compute exactly what it would take to win —
    but the board checks ``block_number <= bid_deadline`` before
    anything else, so knowledge arriving after the deadline is
    worthless: the snipe reverts with "bidding closed" and the observed
    pool settles untouched.
    """

    def observe_pool(self, board_address: bytes, listing_id: int):
        """Everything the chain reveals about the standing bids."""
        listing = self.system.node.call(board_address, "get_listing", [listing_id])
        return [(bid["tag"], bid["stake"]) for bid in listing["bids"]]

    def attempt_snipe(
        self, board_address: bytes, listing_id: int, stake: int
    ) -> Receipt:
        """Fire a perfectly-formed late bid (only its timing is wrong)."""
        from repro.contracts.marketplace import bid_message

        system = self.system
        account = self.board_account(board_address)
        certificate = system.current_certificate(self.keys.public_key)
        commitment = system.registry_commitment()
        attestation = system.scheme.auth(
            bid_message(board_address, account.address, listing_id, stake),
            self.keys,
            certificate,
            commitment,
        )
        system.fund_anonymous(account.address, near=board_address)
        system.fund_anonymous(account.address, stake, near=board_address)
        tx = Transaction(
            nonce=system.node.nonce_of(account.address),
            gas_price=DEFAULT_GAS_PRICE,
            gas_limit=DEFAULT_GAS_LIMIT,
            to=board_address,
            value=stake,
            data=encode_call(
                "place_bid", [listing_id, stake, attestation.to_wire()]
            ),
        )
        return system.send_and_confirm(tx.sign(account.keypair))


class ReputationFarmer:
    """Splits one stake over k freshly certified sybil credentials.

    Re-registering IS possible (the RA certifies any new key), but a
    fresh credential's board tag is fresh too — the common-prefix PRF
    makes reputation non-transferable — so every sybil starts at score
    zero and multiplier 1.0.  k bids of stake S/k therefore each score
    strictly below the single bid of stake S they were split from:
    farming buys nothing, and an established handle beats the whole
    swarm at equal total stake.
    """

    def __init__(self, system, identity: str = "farmer", count: int = 3) -> None:
        self.system = system
        self.sybils = [
            Worker(system, f"{identity}-sybil-{i}") for i in range(count)
        ]

    def handle_tags(self, board_address: bytes) -> List[int]:
        return [sybil.handle_tag(board_address) for sybil in self.sybils]

    def flood_bids(
        self, board_address: bytes, listing_id: int, total_stake: int
    ) -> List[Receipt]:
        """Bid the split stake from every sybil (all perfectly valid)."""
        share = total_stake // len(self.sybils)
        return [
            sybil.place_bid(board_address, listing_id, share)
            for sybil in self.sybils
        ]


class DisputeGriefer(Requester):
    """Disputes flawless delivered work, hoping to claw back the bonus.

    The dispute itself is admissible (the board cannot pre-judge
    quality), but the verdict is a pure function of the SNARK-committed
    reward vector: with every claimed slot rewarded the dispute is
    ruled frivolous, the workers keep the full bonus, AND they split
    the griefer's bond — so griefing has strictly negative expected
    value.
    """

    def grief(self, board_address: bytes, listing_id: int) -> Receipt:
        """Open the frivolous dispute (bond posted like any disputer)."""
        return self.open_dispute(board_address, listing_id)
