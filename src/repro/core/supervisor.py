"""Per-task supervision: retry, backoff, circuit breaking, quarantine.

The engine's scheduler steps N task state machines against one shared
chain; without isolation, one task whose transactions keep timing out
(or whose requester turns byzantine) either stalls the whole run or
crashes it.  :class:`TaskSupervisor` wraps each runner so that

- a step that raises a recoverable error is retried under a capped
  exponential backoff with *deterministic* seeded jitter (two runs
  from the same seeds retry on the same rounds — the engine's
  bit-determinism contract extends to its failure handling);
- each failure first gets one targeted ``recover()`` pass, where the
  runner reconciles its in-memory state against the chain (did the
  transaction land under a hash we forgot? is the contract already
  settled?) — this is what makes crash/restart replays converge
  instead of double-paying;
- a task that keeps failing trips a circuit breaker and is
  *quarantined*: it stops consuming scheduler steps on its normal
  phase machinery and is routed into the contract's timeout-refund
  path (Algorithm 1 lines 18-21), so every honest worker still ends
  paid or refunded exactly once while sibling tasks proceed
  unimpeded.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import observability as obs
from repro.crypto.hashing import sha256
from repro.errors import ChainError, ProtocolError
from repro.chain.txsender import TxAbandonedError

#: Errors a supervisor treats as recoverable task-local failures.
RECOVERABLE = (TxAbandonedError, ChainError, ProtocolError)

BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with deterministic seeded jitter.

    ``delay(attempt, seed)`` is the number of scheduler rounds to wait
    before re-stepping a failed task: ``base_delay`` doubling per
    attempt, capped at ``max_delay``, plus a jitter in
    ``[0, jitter]`` drawn from a hash of the seed and the attempt —
    reproducible, but de-synchronized across tasks so a whole wave of
    failures does not retry in lockstep.
    """

    max_attempts: int = 4
    base_delay: int = 1
    max_delay: int = 16
    jitter: int = 1

    def __post_init__(self) -> None:
        if self.max_attempts < 1 or self.base_delay < 1:
            raise ProtocolError("need at least one attempt and one round")
        if self.max_delay < self.base_delay or self.jitter < 0:
            raise ProtocolError("max_delay must cover base_delay; jitter >= 0")

    def delay(self, attempt: int, seed: bytes) -> int:
        attempt = max(1, attempt)
        base = min(self.max_delay, self.base_delay << (attempt - 1))
        if not self.jitter:
            return base
        draw = int.from_bytes(
            sha256(b"retry-jitter", seed, attempt.to_bytes(4, "big")), "big"
        )
        return base + draw % (self.jitter + 1)


class CircuitBreaker:
    """Counts consecutive failures; opens at ``threshold``.

    Success (a completed phase transition) closes it again, so a task
    that limps through transient faults never gets quarantined — only
    one that fails *persistently* at the same phase.
    """

    def __init__(self, threshold: int = 3) -> None:
        if threshold < 1:
            raise ProtocolError("breaker threshold must be >= 1")
        self.threshold = threshold
        self.failures = 0
        self.state = BREAKER_CLOSED

    def record_failure(self) -> bool:
        """Register one failure; True when this one opens the breaker."""
        self.failures += 1
        if self.state == BREAKER_CLOSED and self.failures >= self.threshold:
            self.state = BREAKER_OPEN
            return True
        return False

    def record_success(self) -> None:
        self.failures = 0
        self.state = BREAKER_CLOSED

    @property
    def open(self) -> bool:
        return self.state == BREAKER_OPEN


class TaskSupervisor:
    """Supervises one task runner through the scheduler's rounds."""

    def __init__(
        self,
        runner,
        policy: RetryPolicy | None = None,
        breaker_threshold: int = 3,
    ) -> None:
        self.runner = runner
        self.policy = policy or RetryPolicy()
        self.breaker = CircuitBreaker(breaker_threshold)
        self._seed = sha256(b"supervisor", runner.index.to_bytes(4, "big"))
        self.next_round = 0
        self.retries = 0
        self.recoveries = 0
        self.last_error: str = ""

    # restored from checkpoints
    @property
    def failures(self) -> int:
        return self.breaker.failures

    def restore_failures(self, failures: int) -> None:
        self.breaker.failures = failures
        if failures >= self.breaker.threshold:
            self.breaker.state = BREAKER_OPEN

    def step(self, round_index: int) -> None:
        runner = self.runner
        if runner.done:
            return
        if round_index < self.next_round:
            return  # backing off
        state_before = runner.state
        try:
            runner.step()
        except RECOVERABLE as exc:
            self._handle_failure(round_index, exc)
            return
        if runner.state != state_before:
            # A completed transition is the supervisor's success signal.
            self.breaker.record_success()

    def _handle_failure(self, round_index: int, exc: Exception) -> None:
        runner = self.runner
        self.last_error = str(exc)
        if obs.TRACER.enabled:
            obs.count("engine.task_failures")
        # One targeted reconciliation pass before counting the failure:
        # the chain may already hold the outcome we were waiting for.
        try:
            with obs.span(
                "engine.recover", task=runner.index, state=runner.state
            ) as recover_span:
                recovered = runner.recover(exc)
                recover_span.set_attrs(recovered=bool(recovered))
        except RECOVERABLE as recover_exc:
            recovered = False
            self.last_error = str(recover_exc)
        if recovered:
            self.recoveries += 1
            self.breaker.record_success()
            if obs.TRACER.enabled:
                obs.count("engine.recoveries")
            return
        opened = self.breaker.record_failure()
        self.retries += 1
        backoff = self.policy.delay(self.breaker.failures, self._seed)
        self.next_round = round_index + backoff
        if obs.TRACER.enabled:
            obs.count("engine.task_retries")
            obs.observe(
                "engine.retry_backoff_rounds", backoff,
                buckets=(1, 2, 4, 8, 16, 32),
            )
        if opened or self.breaker.failures > self.policy.max_attempts:
            runner.quarantine(f"circuit breaker open: {self.last_error}")
