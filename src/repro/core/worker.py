"""The worker client (the off-chain half of Fig. 3, worker side).

Drives AnswerCollection: validates the task contract, encrypts the
answer under the task's epk, anonymously authenticates
α_C ‖ α_i ‖ C_i, and submits from a fresh one-task address.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro import observability as obs
from repro.crypto.hashing import sha256
from repro.crypto.rsa import RSAPublicKey
from repro.errors import ProtocolError
from repro.anonauth.keys import UserKeyPair
from repro.chain.receipts import Receipt
from repro.chain.transaction import Transaction, encode_call
from repro.core.anonymity import OneTaskAccount, derive_one_task_account
from repro.core.encryption import encrypt_answer
from repro.core.params import TaskParameters
from repro.core.protocol import (
    DEFAULT_GAS_LIMIT,
    DEFAULT_GAS_PRICE,
    TaskHandle,
    ZebraLancerSystem,
)
from repro.serialization import decode
from repro.anonauth.scheme import task_prefix


@dataclass
class SubmissionRecord:
    """What a worker remembers about one submission (to claim rewards)."""

    task_address: bytes
    account_address: bytes
    receipt: Receipt


@dataclass
class PreparedSubmission:
    """A built (but unsent) answer submission.

    Produced by :meth:`Worker.prepare_submission`; the scheduler funds
    ``account.address`` with gas, broadcasts ``transaction`` alongside
    other tasks' traffic, and hands the receipt back to
    :meth:`Worker.complete_submission`.
    """

    task_address: bytes
    account: "OneTaskAccount"
    transaction: Transaction


class Worker:
    """A registered worker."""

    def __init__(
        self,
        system: ZebraLancerSystem,
        identity: str,
        seed: Optional[bytes] = None,
        register: bool = True,
    ) -> None:
        self.system = system
        self.identity = identity
        self._seed = seed if seed is not None else sha256(b"worker", identity.encode())
        self.keys = UserKeyPair.generate(system.mimc, seed=self._seed + b"|id")
        #: ``register=False`` defers RA onboarding to a batch
        #: (``system.register_participants``).
        self.certificate = (
            system.register_participant(identity, self.keys.public_key)
            if register
            else None
        )
        self.submissions: List[SubmissionRecord] = []

    # ----- task inspection ------------------------------------------------------------

    def read_task(self, task_address: bytes) -> TaskParameters:
        raw = self.system.node.call(task_address, "get_params")
        return TaskParameters.from_storage(raw)

    def read_task_epk(self, task_address: bytes) -> RSAPublicKey:
        wire = self.system.node.call(task_address, "get_epk")
        n, e = decode(wire)
        return RSAPublicKey(n=n, e=e)

    def validate_task(self, task_address: bytes) -> TaskParameters:
        """A worker's due diligence before contributing.

        Checks the parameters parse, the budget is actually held by the
        contract, the announced epk matches its fingerprint, and the
        task is still collecting.
        """
        params = self.read_task(task_address)
        node = self.system.node
        if node.balance_of(task_address) < params.budget:
            raise ProtocolError("contract does not hold the announced budget")
        epk = self.read_task_epk(task_address)
        if epk.fingerprint() != params.encryption_key_fingerprint:
            raise ProtocolError("epk does not match the announced fingerprint")
        if node.call(task_address, "get_phase") != "collecting":
            raise ProtocolError("task is not accepting answers")
        if node.call(task_address, "is_collection_closed"):
            raise ProtocolError("task already collected its answers")
        return params

    # ----- AnswerCollection --------------------------------------------------------------

    def submit_answer(
        self,
        handle_or_address,
        answer_fields: Sequence[int],
        validate: bool = True,
    ) -> SubmissionRecord:
        """Encrypt, authenticate and submit one answer."""
        task_address = (
            handle_or_address.address
            if isinstance(handle_or_address, TaskHandle)
            else handle_or_address
        )
        with obs.span(
            "protocol.submit", worker=self.identity, task=task_address.hex()
        ):
            record = self._submit_answer(task_address, answer_fields, validate)
        if obs.TRACER.enabled:
            obs.count("protocol.submissions")
        return record

    def _submit_answer(
        self,
        task_address: bytes,
        answer_fields: Sequence[int],
        validate: bool,
    ) -> SubmissionRecord:
        system = self.system
        prepared = self.prepare_submission(task_address, answer_fields, validate)
        system.fund_anonymous(prepared.account.address, near=task_address)
        receipt = system.send_reliable(
            prepared.transaction, prepared.account.keypair
        )
        return self.complete_submission(prepared, receipt)

    def prepare_submission(
        self,
        handle_or_address,
        answer_fields: Sequence[int],
        validate: bool = True,
    ) -> PreparedSubmission:
        """Encrypt and authenticate an answer without funding/sending.

        The caller must fund ``prepared.account.address`` for gas
        before broadcasting ``prepared.transaction``.
        """
        task_address = (
            handle_or_address.address
            if isinstance(handle_or_address, TaskHandle)
            else handle_or_address
        )
        system = self.system
        params = (
            self.validate_task(task_address)
            if validate
            else self.read_task(task_address)
        )
        if len(answer_fields) != params.answer_arity:
            raise ProtocolError(
                f"task expects {params.answer_arity} answer fields, "
                f"got {len(answer_fields)}"
            )
        account = derive_one_task_account(self._seed, f"task:{task_address.hex()}")

        epk = self.read_task_epk(task_address)
        rng = random.Random(
            int.from_bytes(
                sha256(self._seed, task_address, b"answer-encryption"), "big"
            )
        )
        ciphertext = encrypt_answer(epk, list(answer_fields), system.mimc, rng)
        ciphertext_wire = ciphertext.to_wire()

        certificate = system.current_certificate(self.keys.public_key)
        commitment = system.registry_commitment()
        message = task_prefix(task_address) + account.address + ciphertext_wire
        attestation = system.scheme.auth(message, self.keys, certificate, commitment)

        data = encode_call(
            "submit_answer", [ciphertext_wire, attestation.to_wire()]
        )
        tx = Transaction(
            nonce=system.node.nonce_of(account.address),
            gas_price=DEFAULT_GAS_PRICE,
            gas_limit=DEFAULT_GAS_LIMIT,
            to=task_address,
            value=0,
            data=data,
        )
        return PreparedSubmission(
            task_address=task_address, account=account, transaction=tx
        )

    def complete_submission(
        self, prepared: PreparedSubmission, receipt: Receipt
    ) -> SubmissionRecord:
        """Adopt a confirmed submission receipt into this worker."""
        record = SubmissionRecord(
            task_address=prepared.task_address,
            account_address=prepared.account.address,
            receipt=receipt,
        )
        self.submissions.append(record)
        return record

    def reward_received(self, task_address: bytes) -> int:
        """The balance sitting on this worker's one-task address."""
        account = derive_one_task_account(self._seed, f"task:{task_address.hex()}")
        return self.system.node.balance_of(account.address)

    # ----- open marketplace -----------------------------------------------------------

    def board_account(self, board_address: bytes) -> OneTaskAccount:
        """This worker's one-board account (bids and claims originate here).

        One fresh address per board, exactly like the one-task accounts:
        the board learns a stable *tag* (the reputation handle) but
        never a stable address shared with any task.
        """
        return derive_one_task_account(self._seed, f"board:{board_address.hex()}")

    def handle_tag(self, board_address: bytes) -> int:
        """The pseudonymous reputation handle this worker owns on a board.

        t1 = PRF_sk(board prefix) — deterministic per (key, board), so
        the worker can predict its own handle (e.g. to find its bid in
        the pool) without any on-chain interaction.
        """
        return self.system.scheme.prefix_tag(task_prefix(board_address), self.keys)

    def task_tag(self, task_address: bytes) -> int:
        """This worker's per-task linkability tag (to locate its answer)."""
        return self.system.scheme.prefix_tag(task_prefix(task_address), self.keys)

    def discover_listings(self, board_address: bytes) -> List[dict]:
        """Browse the board: every listing still accepting bids."""
        return self.system.node.call(board_address, "get_open_listings")

    def place_bid(
        self, board_address: bytes, listing_id: int, stake: int
    ) -> Receipt:
        """Stake on a listing under this worker's anonymous handle."""
        from repro.contracts.marketplace import bid_message

        system = self.system
        account = self.board_account(board_address)
        certificate = system.current_certificate(self.keys.public_key)
        commitment = system.registry_commitment()
        message = bid_message(board_address, account.address, listing_id, stake)
        attestation = system.scheme.auth(
            message, self.keys, certificate, commitment
        )
        system.fund_anonymous(account.address, near=board_address)
        system.fund_anonymous(account.address, stake, near=board_address)
        tx = Transaction(
            nonce=system.node.nonce_of(account.address),
            gas_price=DEFAULT_GAS_PRICE,
            gas_limit=DEFAULT_GAS_LIMIT,
            to=board_address,
            value=stake,
            data=encode_call(
                "place_bid", [listing_id, stake, attestation.to_wire()]
            ),
        )
        receipt = system.send_reliable(tx, account.keypair)
        obs.count("market.client.bids")
        return receipt

    def find_submission_index(self, task_address: bytes) -> int:
        """Locate this worker's answer slot by its per-task tag."""
        tags = self.system.node.call(task_address, "get_tags")
        tag = self.task_tag(task_address)
        for index, seen in enumerate(tags[1:]):  # tags[0] is the requester's
            if seen == tag:
                return index
        raise ProtocolError("this worker has no submission on that task")

    def report_work(
        self,
        board_address: bytes,
        listing_id: int,
        task_address: bytes,
        answer_index: Optional[int] = None,
    ) -> Receipt:
        """Claim this worker's task submission for its matched bid.

        Proves (in zero knowledge, via a tag-link attestation) that the
        key behind the bid's board tag also owns the submission's task
        tag — the two addresses involved stay unlinkable to everyone
        else.
        """
        system = self.system
        if answer_index is None:
            answer_index = self.find_submission_index(task_address)
        account = self.board_account(board_address)
        certificate = system.current_certificate(self.keys.public_key)
        commitment = system.registry_commitment()
        attestation = system.scheme.auth_tag_link(
            task_prefix(board_address),
            task_prefix(task_address),
            self.keys,
            certificate,
            commitment,
        )
        system.fund_anonymous(account.address, near=board_address)
        tx = Transaction(
            nonce=system.node.nonce_of(account.address),
            gas_price=DEFAULT_GAS_PRICE,
            gas_limit=DEFAULT_GAS_LIMIT,
            to=board_address,
            value=0,
            data=encode_call(
                "report_work", [listing_id, answer_index, attestation.to_wire()]
            ),
        )
        receipt = system.send_reliable(tx, account.keypair)
        obs.count("market.client.claims")
        return receipt

    def board_balance(self, board_address: bytes) -> int:
        """The balance sitting on this worker's one-board address."""
        return self.system.node.balance_of(self.board_account(board_address).address)
