"""ZebraLancer's core: the private & anonymous crowdsourcing protocol.

High-level entry points:

- :class:`repro.core.protocol.ZebraLancerSystem` — one-call system
  bootstrap (chain + RA + SNARK setup + registry contract).
- :class:`repro.core.requester.Requester` / :class:`repro.core.worker.Worker`
  — the off-chain clients of Fig. 3.
- :mod:`repro.core.policy` — reward policies (majority vote per the
  paper's evaluation, plus EM / auction extensions).
- :mod:`repro.core.attacks` — the adversaries the design defends
  against (free-riders, false-reporters, multi-submitters).
- :mod:`repro.core.baselines` — centralized and naive-decentralized
  baselines for comparison experiments.
"""

from repro.core.checkpoint import (
    CheckpointStore,
    EngineCheckpoint,
    FileCheckpointStore,
    decode_checkpoint,
    encode_checkpoint,
)
from repro.core.engine import (
    EngineReport,
    ProtocolEngine,
    SimulatedEngineCrash,
    TaskSpec,
    engine_system,
    make_chaos_specs,
    make_uniform_specs,
    run_serial,
)
from repro.core.params import TaskParameters
from repro.core.policy import (
    DawidSkeneEMPolicy,
    MajorityVotePolicy,
    ProportionalAgreementPolicy,
    ReverseAuctionPolicy,
    RewardPolicy,
)
from repro.core.protocol import TaskHandle, ZebraLancerSystem
from repro.core.requester import Requester
from repro.core.supervisor import CircuitBreaker, RetryPolicy, TaskSupervisor
from repro.core.worker import Worker

__all__ = [
    "TaskParameters",
    "RewardPolicy",
    "MajorityVotePolicy",
    "ProportionalAgreementPolicy",
    "DawidSkeneEMPolicy",
    "ReverseAuctionPolicy",
    "TaskHandle",
    "ZebraLancerSystem",
    "Requester",
    "Worker",
    "ProtocolEngine",
    "TaskSpec",
    "EngineReport",
    "engine_system",
    "make_uniform_specs",
    "make_chaos_specs",
    "run_serial",
    "SimulatedEngineCrash",
    "EngineCheckpoint",
    "CheckpointStore",
    "FileCheckpointStore",
    "encode_checkpoint",
    "decode_checkpoint",
    "RetryPolicy",
    "CircuitBreaker",
    "TaskSupervisor",
]
