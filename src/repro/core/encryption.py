"""Answer encryption: RSA-OAEP transport + circuit-friendly payload.

The paper encrypts answers under RSA-OAEP-2048 and has the requester
prove (in zero knowledge) that the rewards were computed from the
decrypted answers.  Proving RSA decryption inside a SNARK is
impractical, so — per DESIGN.md §2.3 — the reproduction uses the
standard hybrid layout:

- the worker samples a per-answer symmetric key ``k``;
- the answer fields are MiMC-CTR encrypted under ``k``;
- ``k`` travels to the requester inside an RSA-OAEP-2048 blob
  (the paper's named primitive, implemented from scratch);
- the on-chain ciphertext additionally carries ``h = MiMC(k)``, the
  commitment the reward circuit opens, binding the proved plaintext to
  the worker's actual submission.

Nothing on-chain reveals anything about the answer (MiMC-CTR under a
fresh key + OAEP + a hiding commitment).
"""

from __future__ import annotations

import random
import secrets
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.crypto.rsa import RSAKeyPair, RSAPublicKey
from repro.errors import CryptoError, DecryptionError
from repro.serialization import decode, encode
from repro.zksnark.field import BN128_SCALAR_FIELD
from repro.zksnark.gadgets.mimc import MiMCParameters, mimc_encrypt_native, mimc_hash_native

_P = BN128_SCALAR_FIELD


@dataclass(frozen=True)
class AnswerCiphertext:
    """One on-chain encrypted answer C_i."""

    key_commitment: int       # h = MiMC(k), opened inside the reward proof
    nonce: int                # CTR nonce for the MiMC keystream
    body: Tuple[int, ...]     # encrypted answer field elements
    key_blob: bytes           # RSA-OAEP-2048 encryption of k (off-circuit)

    def to_wire(self) -> bytes:
        return encode(
            [self.key_commitment, self.nonce, list(self.body), self.key_blob]
        )

    @classmethod
    def from_wire(cls, data: bytes) -> "AnswerCiphertext":
        commitment, nonce, body, blob = decode(data)
        return cls(
            key_commitment=commitment, nonce=nonce, body=tuple(body), key_blob=blob
        )

    def size_bytes(self) -> int:
        return len(self.to_wire())


@dataclass
class TaskKeyPair:
    """The requester's one-task-only encryption keypair (epk, esk)."""

    rsa: RSAKeyPair

    @property
    def public_key(self) -> RSAPublicKey:
        return self.rsa.public_key

    @classmethod
    def generate(
        cls, bits: int = 1024, rng: Optional[random.Random] = None
    ) -> "TaskKeyPair":
        """Generate a fresh keypair.

        The default modulus is 1024 bits to keep simulations snappy;
        pass ``bits=2048`` for the paper's RSA-OAEP-2048.
        """
        return cls(rsa=RSAKeyPair.generate(bits, rng))


def keystream_element(key: int, nonce: int, index: int, mimc: MiMCParameters) -> int:
    """The CTR keystream block for position ``index``."""
    return mimc_encrypt_native(key, (nonce + index) % _P, mimc)


def encrypt_answer(
    public_key: RSAPublicKey,
    answer_fields: Sequence[int],
    mimc: MiMCParameters,
    rng: Optional[random.Random] = None,
) -> AnswerCiphertext:
    """Encrypt answer field elements for the task's epk."""
    if not answer_fields:
        raise ValueError("answer must contain at least one field element")
    if rng is None:
        key = secrets.randbelow(_P) or 1
        nonce = secrets.randbelow(_P)
    else:
        key = rng.randrange(1, _P)
        nonce = rng.randrange(_P)
    body = tuple(
        (int(a) + keystream_element(key, nonce, i, mimc)) % _P
        for i, a in enumerate(answer_fields)
    )
    blob = public_key.encrypt(key.to_bytes(32, "big"), rng=rng)
    return AnswerCiphertext(
        key_commitment=mimc_hash_native([key], mimc),
        nonce=nonce,
        body=body,
        key_blob=blob,
    )


def recover_answer_key(keypair: TaskKeyPair, ciphertext: AnswerCiphertext,
                       mimc: MiMCParameters) -> int:
    """Decrypt and validate the symmetric key from the OAEP blob.

    Raises :class:`DecryptionError` if the blob is malformed or the key
    does not open the on-chain commitment (a cheating submission).
    """
    try:
        plaintext = keypair.rsa.decrypt(ciphertext.key_blob)
    except DecryptionError:
        raise
    except CryptoError as exc:
        # A wrong-key blob can fail structurally (e.g. representative
        # out of range for a smaller modulus) before OAEP unpadding even
        # runs; present one uniform failure either way.
        raise DecryptionError(f"key blob does not decrypt: {exc}") from exc
    if len(plaintext) != 32:
        raise DecryptionError("key blob has the wrong length")
    key = int.from_bytes(plaintext, "big")
    if not 0 < key < _P:
        raise DecryptionError("key blob decodes outside the field")
    if mimc_hash_native([key], mimc) != ciphertext.key_commitment:
        raise DecryptionError("key does not open the on-chain commitment")
    return key


def decrypt_answer(
    keypair: TaskKeyPair, ciphertext: AnswerCiphertext, mimc: MiMCParameters
) -> List[int]:
    """Full decryption: recover k, strip the keystream."""
    key = recover_answer_key(keypair, ciphertext, mimc)
    return decrypt_with_key(key, ciphertext, mimc)


def decrypt_with_key(
    key: int, ciphertext: AnswerCiphertext, mimc: MiMCParameters
) -> List[int]:
    """Strip the MiMC-CTR keystream given the symmetric key."""
    return [
        (c - keystream_element(key, ciphertext.nonce, i, mimc)) % _P
        for i, c in enumerate(ciphertext.body)
    ]
