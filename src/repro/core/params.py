"""Task parameters: the ``Param`` bundle of the TaskPublish phase."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict

from repro.errors import ProtocolError


@dataclass(frozen=True)
class TaskParameters:
    """Everything a task contract is parameterised with (Section V-B).

    Attributes:
        description: human-readable task statement (e.g. the image URI
            and the label choices) — stored on-chain for workers to read.
        num_answers: n, the number of answers to collect.
        budget: τ, deposited into the contract at deployment.
        answer_window: T_A, the answering deadline in blocks.
        instruction_window: T_I, the reward-instruction deadline in
            blocks (measured from the end of collection).
        policy_descriptor: the announced reward policy (name + params),
            immutable once on-chain.
        answer_arity: field elements per answer (policy-dependent).
        encryption_key_fingerprint: binds the RSA epk to the contract.
        submissions_per_worker: k, the per-identity submission allowance
            (footnote 11: the contract counts linked attestations, so
            any k is enforceable; the paper's experiments use k = 1).
    """

    description: str
    num_answers: int
    budget: int
    answer_window: int
    instruction_window: int
    policy_descriptor: Dict[str, Any]
    answer_arity: int
    encryption_key_fingerprint: bytes
    submissions_per_worker: int = 1

    def __post_init__(self) -> None:
        if self.num_answers < 1:
            raise ProtocolError("a task must request at least one answer")
        if self.budget < self.num_answers:
            raise ProtocolError("budget must cover at least 1 unit per answer")
        if self.answer_window < 1 or self.instruction_window < 1:
            raise ProtocolError("deadlines must be at least one block")
        if not 1 <= self.submissions_per_worker <= self.num_answers:
            raise ProtocolError("allowance must be within [1, num_answers]")

    def to_storage(self) -> Dict[str, Any]:
        """Plain-dict rendering for contract storage."""
        return {
            "description": self.description,
            "num_answers": self.num_answers,
            "budget": self.budget,
            "answer_window": self.answer_window,
            "instruction_window": self.instruction_window,
            "policy_descriptor": dict(self.policy_descriptor),
            "answer_arity": self.answer_arity,
            "encryption_key_fingerprint": self.encryption_key_fingerprint,
            "submissions_per_worker": self.submissions_per_worker,
        }

    @classmethod
    def from_storage(cls, raw: Dict[str, Any]) -> "TaskParameters":
        return cls(
            description=raw["description"],
            num_answers=raw["num_answers"],
            budget=raw["budget"],
            answer_window=raw["answer_window"],
            instruction_window=raw["instruction_window"],
            policy_descriptor=dict(raw["policy_descriptor"]),
            answer_arity=raw["answer_arity"],
            encryption_key_fingerprint=raw["encryption_key_fingerprint"],
            submissions_per_worker=raw.get("submissions_per_worker", 1),
        )
