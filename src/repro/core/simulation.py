"""Monte-Carlo incentive experiments.

The incentive mechanisms ZebraLancer enforces ([9–11]) are only worth
enforcing if they actually separate effort from free-riding; this
module provides a fast, chain-free simulator for that question:
populations of workers with configurable accuracy answer many tasks,
the policy allocates the budget, and the harness reports per-profile
expected earnings.  Used by tests to check the economic claims (honest
effort strictly out-earns guessing under majority voting) and available
to downstream users for mechanism design.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import PolicyError
from repro.core.policy import Answer, MajorityVotePolicy, RewardPolicy


@dataclass(frozen=True)
class WorkerProfile:
    """A behavioural class of workers.

    ``accuracy`` is the probability of reporting the true label; the
    rest of the mass spreads uniformly over the wrong labels.  An
    ``absent`` worker skips the task entirely (the paper's ⊥).
    """

    name: str
    count: int
    accuracy: float
    absent_probability: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.accuracy <= 1.0:
            raise PolicyError("accuracy must be a probability")
        if not 0.0 <= self.absent_probability <= 1.0:
            raise PolicyError("absence must be a probability")
        if self.count < 0:
            raise PolicyError("count must be non-negative")


@dataclass
class SimulationResult:
    """Aggregated outcomes over all simulated tasks."""

    tasks: int
    budget_per_task: int
    earnings_by_profile: Dict[str, int] = field(default_factory=dict)
    submissions_by_profile: Dict[str, int] = field(default_factory=dict)
    total_paid: int = 0
    majority_correct_tasks: int = 0

    def expected_earning(self, profile_name: str) -> float:
        """Mean earning per submission for one behavioural class."""
        submissions = self.submissions_by_profile.get(profile_name, 0)
        if submissions == 0:
            return 0.0
        return self.earnings_by_profile.get(profile_name, 0) / submissions

    @property
    def majority_accuracy(self) -> float:
        return self.majority_correct_tasks / self.tasks if self.tasks else 0.0


def sample_answer(
    rng: random.Random,
    truth: int,
    num_choices: int,
    accuracy: float,
    absent_probability: float = 0.0,
) -> Optional[List[int]]:
    """One worker's answer under the profile semantics (``None`` = ⊥).

    The worker skips with ``absent_probability``, otherwise reports the
    true label with ``accuracy`` and a uniformly wrong one with the
    remaining mass.  This is THE answer model: both the chain-free
    Monte-Carlo harness here and the on-chain engine's
    ``make_uniform_specs`` draw from it, so the two agree label for
    label given the same rng stream.
    """
    if rng.random() < absent_probability:
        return None
    if rng.random() < accuracy:
        return [truth]
    wrong = rng.randrange(num_choices - 1)
    return [wrong if wrong < truth else wrong + 1]


def simulate_tasks(
    policy: RewardPolicy,
    profiles: Sequence[WorkerProfile],
    num_choices: int,
    tasks: int = 100,
    budget_per_task: int = 1_000,
    rng: Optional[random.Random] = None,
) -> SimulationResult:
    """Run ``tasks`` single-label tasks and aggregate earnings.

    Each task draws a uniform ground-truth label; each worker answers
    per its profile; the policy allocates the budget exactly as the
    on-chain contract would (this simulator and the chain protocol call
    the same ``compute_rewards``).
    """
    if num_choices < 2:
        raise PolicyError("need at least two choices")
    rng = rng or random.Random(0)
    result = SimulationResult(tasks=tasks, budget_per_task=budget_per_task)
    roster: List[WorkerProfile] = []
    for profile in profiles:
        roster.extend([profile] * profile.count)
    if not roster:
        raise PolicyError("no workers to simulate")

    for _ in range(tasks):
        truth = rng.randrange(num_choices)
        answers: List[Answer] = []
        owners: List[str] = []
        for profile in roster:
            answers.append(
                sample_answer(
                    rng, truth, num_choices,
                    profile.accuracy, profile.absent_probability,
                )
            )
            owners.append(profile.name)
        rewards = policy.compute_rewards(answers, budget_per_task)
        for owner, answer, reward in zip(owners, answers, rewards):
            if answer is not None:
                result.submissions_by_profile[owner] = (
                    result.submissions_by_profile.get(owner, 0) + 1
                )
            result.earnings_by_profile[owner] = (
                result.earnings_by_profile.get(owner, 0) + reward
            )
        result.total_paid += sum(rewards)
        if isinstance(policy, MajorityVotePolicy):
            if policy.majority_value(answers) == truth:
                result.majority_correct_tasks += 1
    return result


def render_result(result: SimulationResult) -> str:
    """A small report table."""
    lines = [
        f"{result.tasks} tasks x budget {result.budget_per_task} "
        f"(paid {result.total_paid} total; "
        f"majority correct {result.majority_accuracy:.0%})"
    ]
    for name in sorted(result.earnings_by_profile):
        lines.append(
            f"  {name:<16} earned {result.earnings_by_profile[name]:>9}  "
            f"({result.expected_earning(name):8.1f} per submission)"
        )
    return "\n".join(lines)
