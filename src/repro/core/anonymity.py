"""One-task-only blockchain accounts.

Every interaction with a task happens through a fresh address (the
paper's simple defence against chain-layer de-anonymization; footnote
8).  Addresses are derived deterministically from the participant's
master seed and a task label so clients can re-derive them, but two
different tasks' addresses are unlinkable to an observer.

Funding such an address for gas is itself a linkage channel; the paper
leaves this to anonymous-payment layers (its open question 3).  The
simulation funds one-task accounts from the test net's faucet, which
stands in for any unlinkable funding mechanism (e.g. Zcash-style
shielded payments).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto import ecdsa
from repro.crypto.hashing import sha256


@dataclass(frozen=True)
class OneTaskAccount:
    """A throwaway chain identity for one task."""

    keypair: ecdsa.ECDSAKeyPair
    label: str

    @property
    def address(self) -> bytes:
        return self.keypair.address()


def derive_one_task_account(master_seed: bytes, task_label: str) -> OneTaskAccount:
    """Derive the fresh account a participant uses for ``task_label``."""
    seed = sha256(b"one-task-account", master_seed, task_label.encode())
    return OneTaskAccount(
        keypair=ecdsa.ECDSAKeyPair.from_seed(seed), label=task_label
    )
