"""Baseline crowdsourcing platforms for comparison experiments.

Two baselines bracket ZebraLancer:

- :class:`CentralizedPlatform` — an MTurk-style trusted arbiter.  It
  sees every answer in the clear (the privacy-breach surface of §I)
  and lets the requester reject answers after reading them (the
  false-reporting bias of [15]).
- :class:`NaiveDecentralizedPlatform` — a smart contract collecting
  *plaintext* answers with no authentication: free-riders copy pending
  answers out of the mempool and multi-submitters claim many shares.

Both implement the same minimal interface so experiments can run the
same workload against all three systems and compare outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import ProtocolError
from repro.core.policy import Answer, RewardPolicy


@dataclass
class BaselineOutcome:
    """What each participant walked away with."""

    payments: List[int]
    data_visible_to_platform: List[Answer]
    notes: str = ""


class CentralizedPlatform:
    """A trusted third-party arbiter (MTurk-shaped).

    The platform hosts plaintext answers and forwards whatever payment
    decision the requester makes — including outright rejection of work
    it has already delivered (false-reporting).
    """

    def __init__(self) -> None:
        self._answers: Dict[str, List[Answer]] = {}
        self._budgets: Dict[str, int] = {}
        #: every answer the platform operator could read or leak
        self.observed_plaintexts: List[Answer] = []

    def post_task(self, task_id: str, budget: int) -> None:
        if task_id in self._budgets:
            raise ProtocolError("task id already used")
        self._budgets[task_id] = budget
        self._answers[task_id] = []

    def submit(self, task_id: str, answer: Answer) -> int:
        answers = self._answers[task_id]
        answers.append(answer)
        self.observed_plaintexts.append(answer)
        return len(answers) - 1

    def answers(self, task_id: str) -> List[Answer]:
        # The requester reads the data BEFORE deciding to pay.
        return list(self._answers[task_id])

    def settle(
        self,
        task_id: str,
        requester_decision: Sequence[int],
    ) -> BaselineOutcome:
        """Pay whatever the requester says (no policy enforcement)."""
        answers = self._answers[task_id]
        budget = self._budgets[task_id]
        payments = list(requester_decision)
        if len(payments) != len(answers):
            raise ProtocolError("decision length mismatch")
        if sum(payments) > budget:
            raise ProtocolError("decision exceeds escrowed budget")
        return BaselineOutcome(
            payments=payments,
            data_visible_to_platform=list(answers),
            notes="platform enforced nothing beyond the budget cap",
        )


@dataclass
class _NaiveSubmission:
    sender: str
    answer: Answer


class NaiveDecentralizedPlatform:
    """Plaintext answers on a transparent chain, no authentication.

    Models the decentralized-crowdsourcing attempts the related-work
    section criticizes ([20-22]): everything ZebraLancer adds is
    stripped away, so the classic attacks all succeed.
    """

    def __init__(self, policy: RewardPolicy, budget: int, num_answers: int) -> None:
        self.policy = policy
        self.budget = budget
        self.num_answers = num_answers
        self.mempool: List[_NaiveSubmission] = []
        self.included: List[_NaiveSubmission] = []

    def broadcast(self, sender: str, answer: Answer) -> None:
        """Answers sit in the open mempool before inclusion."""
        self.mempool.append(_NaiveSubmission(sender=sender, answer=answer))

    def visible_pending_answers(self) -> List[Answer]:
        """What any observer (and any free-rider) reads for free."""
        return [submission.answer for submission in self.mempool]

    def mine(self) -> None:
        """Include pending submissions up to the task size."""
        while self.mempool and len(self.included) < self.num_answers:
            self.included.append(self.mempool.pop(0))

    def settle(self) -> BaselineOutcome:
        answers = [submission.answer for submission in self.included]
        payments = self.policy.compute_rewards(answers, self.budget)
        return BaselineOutcome(
            payments=payments,
            data_visible_to_platform=answers,
            notes="plaintext on-chain; copying and sybil submissions undetectable",
        )

    def senders(self) -> List[str]:
        return [submission.sender for submission in self.included]
