"""Exactly-once payout verification by balance conservation.

Contract payouts are state-level balance credits (no external
transaction carries them), so "paid exactly once" cannot be read off
any single receipt.  Instead it is checked by conservation: for an
address that only ever receives faucet funding and task payouts,

    contract_payment = balance - external_credits + external_debits

where the external flows come from scanning every canonical block's
transactions and receipts.  A double payment (e.g. a replayed reward
instruction after a crash/restart) shows up as twice the expected
reward; a lost payment as zero — either way
:func:`assert_exactly_once_payouts` fails loudly.  The engine's
crash-sweep and chaos tests gate on this, and the chaos benchmark
reports it as its refund-correctness bit.
"""

from __future__ import annotations

from typing import Tuple

from repro.errors import ProtocolError
from repro.core.anonymity import derive_one_task_account

SETTLED_STATUSES = ("completed", "defaulted", "aborted")


def _resident_node(node, address: bytes):
    """The node actually holding an address's chain segment.

    On a sharded chain the routed view exposes ``for_address`` so
    conservation scans run against the owning shard; a plain node is
    its own resident.
    """
    resolve = getattr(node, "for_address", None)
    return resolve(address) if resolve is not None else node


def external_flows(node, address: bytes) -> Tuple[int, int]:
    """(credits, debits) of an address from external transactions only.

    Credits are transfer values sent *to* the address; debits are gas
    plus values of transactions it signed.  Anything else on its
    balance was put there by contract execution.
    """
    node = _resident_node(node, address)
    credits = 0
    debits = 0
    for block in node.canonical_blocks(1, node.height):
        receipts = node.receipts_for_block(block.block_hash) or ()
        for stx, receipt in zip(block.transactions, receipts):
            tx = stx.transaction
            if stx.sender == address:
                debits += receipt.gas_used * tx.gas_price + tx.value
            if tx.to == address:
                credits += tx.value
    return credits, debits


def contract_payment(node, address: bytes) -> int:
    """Net amount the address has received from contract executions."""
    credits, debits = external_flows(node, address)
    return node.balance_of(address) - credits + debits


def worker_task_address(worker, task_address: bytes) -> bytes:
    """The worker's one-task address for a given task contract."""
    account = derive_one_task_account(
        worker._seed, f"task:{task_address.hex()}"
    )
    return account.address


def assert_exactly_once_payouts(system, specs, outcomes) -> None:
    """Every honest worker's payout equals its task's recorded reward.

    Covers all three settlement shapes: completed (policy rewards),
    defaulted (even split over submitters), aborted (no payouts, full
    refund to the requester).  Raises :class:`ProtocolError` on the
    first violation.
    """
    node = system.node
    for spec, outcome in zip(specs, outcomes):
        if not outcome.address:
            continue
        submitters = [
            (worker, answer)
            for worker, answer in zip(spec.workers, spec.answers)
            if answer is not None
        ]
        if outcome.status == "aborted":
            if outcome.rewards or submitters:
                raise ProtocolError(
                    f"task {outcome.index}: aborted with submissions"
                )
            continue
        if outcome.status not in ("completed", "defaulted"):
            raise ProtocolError(
                f"task {outcome.index}: unsettled status {outcome.status!r}"
            )
        if len(outcome.rewards) != len(submitters):
            raise ProtocolError(
                f"task {outcome.index}: {len(outcome.rewards)} rewards for "
                f"{len(submitters)} submitters"
            )
        for (worker, _), reward in zip(submitters, outcome.rewards):
            address = worker_task_address(worker, outcome.address)
            paid = contract_payment(node, address)
            if paid != reward:
                raise ProtocolError(
                    f"task {outcome.index}: worker {worker.identity} "
                    f"received {paid}, expected exactly {reward}"
                )
        # The contract keeps nothing: budget = payouts + requester change.
        if node.balance_of(outcome.address) != 0:
            raise ProtocolError(
                f"task {outcome.index}: contract retains "
                f"{node.balance_of(outcome.address)}"
            )


# ----- open-market escrow conservation ------------------------------------------------


def market_inflows(node, board_address: bytes) -> int:
    """Total value successfully deposited into a board by external txs.

    Unlike :func:`external_flows` this filters on receipt status: a
    reverted bid (e.g. a foiled snipe) bounces its value back with the
    revert, so only successful transactions fund the escrow.
    """
    node = _resident_node(node, board_address)
    total = 0
    for block in node.canonical_blocks(1, node.height):
        receipts = node.receipts_for_block(block.block_hash) or ()
        for stx, receipt in zip(block.transactions, receipts):
            if stx.transaction.to == board_address and receipt.success:
                total += stx.transaction.value
    return total


def assert_market_conservation(system, report) -> None:
    """Every token that entered the board escrow left it exactly once.

    Takes a :class:`~repro.core.engine.MarketReport` and re-derives,
    from chain data alone:

    - per listing: recorded payouts sum to the disbursed total, and a
      settled/void listing holds zero escrow;
    - board-level: successful inflows == disbursed + still-open escrow,
      and the board's balance is exactly the open escrow;
    - per recipient: the net contract credit on every payout address
      equals the sum of its recorded payout legs — a doubled or dropped
      disbursement fails here even if the totals happen to balance.

    Raises :class:`ProtocolError` on the first violation.
    """
    node = system.node
    board = report.board_address
    open_escrow = 0
    expected: dict = {}
    total_disbursed = 0
    # Audit EVERY listing the board ever carried, from chain state — a
    # report from one wave must not hide leaks from an earlier one.
    for listing_id in range(node.call(board, "num_listings")):
        listing = node.call(board, "get_listing", [listing_id])
        legs = sum(amount for _, amount, _ in listing["payouts"])
        if legs != listing["disbursed"]:
            raise ProtocolError(
                f"listing {listing_id}: payout legs sum to {legs}, "
                f"disbursed counter says {listing['disbursed']}"
            )
        if listing["state"] in ("settled", "void") and listing["escrow"] != 0:
            raise ProtocolError(
                f"listing {listing_id}: terminal state "
                f"{listing['state']!r} retains escrow {listing['escrow']}"
            )
        open_escrow += listing["escrow"]
        total_disbursed += listing["disbursed"]
        for recipient, amount, _ in listing["payouts"]:
            expected[recipient] = expected.get(recipient, 0) + amount

    inflows = market_inflows(node, board)
    if inflows != total_disbursed + open_escrow:
        raise ProtocolError(
            f"board escrow leak: {inflows} flowed in, "
            f"{total_disbursed} disbursed + {open_escrow} still locked"
        )
    if node.balance_of(board) != open_escrow:
        raise ProtocolError(
            f"board balance {node.balance_of(board)} != open escrow {open_escrow}"
        )
    for recipient, amount in expected.items():
        paid = contract_payment(node, recipient)
        if paid != amount:
            raise ProtocolError(
                f"recipient {recipient.hex()} received {paid} from contracts, "
                f"payout ledger promised exactly {amount}"
            )


# ----- cross-shard value conservation -------------------------------------------------


def assert_shard_conservation(chain) -> None:
    """No mint or burn at shard boundaries.

    On a :class:`~repro.chain.sharding.ShardedChain`, every cross-shard
    send burns value at the source outbox and mints it exactly once at
    the destination inbox, so at every instant

        sum(per-shard total supplies) + in-flight value == initial supply

    where the in-flight term is the pairwise difference between
    cumulative outbox ``sent`` and inbox ``received`` counters.  Also
    checks the in-flight term is non-negative per channel (a negative
    channel means a double delivery slipped past the inbound nonce).
    Accepts a plain Testnet too (zero shards in flight, supply fixed
    since genesis) so callers can assert unconditionally.
    """
    if not hasattr(chain, "in_flight_value"):
        supply = chain.any_node.head_state.total_supply()
        expected = sum(chain.genesis.allocations.values())
        if supply != expected:
            raise ProtocolError(
                f"supply drift on unsharded chain: {supply} != {expected}"
            )
        return
    in_flight = chain.in_flight_value()
    if in_flight < 0:
        raise ProtocolError(
            f"negative in-flight value {in_flight}: an inbox received more "
            "than its source outbox ever sent (double delivery)"
        )
    total = chain.total_supply() + in_flight
    if total != chain.initial_supply():
        raise ProtocolError(
            f"cross-shard conservation violated: supply {chain.total_supply()} "
            f"+ in-flight {in_flight} != initial {chain.initial_supply()}"
        )
