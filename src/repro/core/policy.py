"""Reward policies R(A_j; A_1..A_n, τ).

The paper's evaluation instantiates the majority-vote quality-aware
incentive of [10] (τ/n to every answer matching the majority); its
model also covers richer quality estimators [9–11] and auction-based
incentives [7, 8].  This module implements:

- :class:`MajorityVotePolicy` — the paper's policy, fully provable in
  R1CS (see :mod:`repro.core.reward_circuit`);
- :class:`ProportionalAgreementPolicy` — reward ∝ agreement count;
- :class:`DawidSkeneEMPolicy` — EM truth inference over multi-item
  tasks (the "estimation maximization iterations" the paper cites);
- :class:`ReverseAuctionPolicy` — budgeted uniform-price reverse
  auction (the [7, 8] family).

Only the majority policy has an R1CS compilation; the others declare
native predicates and therefore run under the ideal-functionality
backend (compiling them is the engineering frontier the paper's open
question 1 points at).

Answers are lists of field elements; ``None`` marks a missing or
undecryptable submission (the paper's ⊥).
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional, Sequence

from repro.errors import PolicyError

Answer = Optional[List[int]]


class RewardPolicy(abc.ABC):
    """A deterministic mapping from all answers + budget to rewards."""

    #: Stable policy identifier (bound into proof digests).
    name: str = "policy"

    #: Number of field elements per answer.
    answer_arity: int = 1

    #: Whether the policy compiles to R1CS (Groth16-provable).
    provable: bool = False

    @abc.abstractmethod
    def compute_rewards(self, answers: Sequence[Answer], budget: int) -> List[int]:
        """Reward for each answer slot; total must not exceed ``budget``."""

    def describe(self) -> Dict[str, int | str]:
        """Parameters for digests and on-chain storage."""
        return {"name": self.name}

    def quality_scores(
        self, answers: Sequence[Answer], budget: int, scale: int = 1_000_000
    ) -> List[int]:
        """Per-slot quality weights in parts of ``scale``.

        The marketplace's bonus splits and dispute verdicts consume
        relative quality, not absolute token amounts; normalizing the
        policy's own reward vector keeps the quality judgment identical
        to the one the reward SNARK already committed on-chain.  Slots
        sum to ``scale`` (up to flooring) unless nothing earned a
        reward, in which case all slots are zero.
        """
        rewards = self.compute_rewards(answers, budget)
        total = sum(rewards)
        if total == 0:
            return [0] * len(rewards)
        return [reward * scale // total for reward in rewards]

    def validate_answers(self, answers: Sequence[Answer]) -> None:
        for answer in answers:
            if answer is not None and len(answer) != self.answer_arity:
                raise PolicyError(
                    f"policy {self.name} expects {self.answer_arity} field "
                    f"elements per answer, got {len(answer)}"
                )

    def _check_budget(self, rewards: Sequence[int], budget: int) -> List[int]:
        total = sum(rewards)
        if total > budget:
            raise PolicyError(
                f"policy {self.name} allocated {total} > budget {budget}"
            )
        if any(r < 0 for r in rewards):
            raise PolicyError("rewards must be non-negative")
        return list(rewards)


class MajorityVotePolicy(RewardPolicy):
    """τ/n to every answer equal to the majority, 0 otherwise ([10]).

    Ties break toward the lowest choice value; answers outside
    ``[0, num_choices)`` (and ⊥) never receive a reward and do not
    vote.
    """

    name = "majority-vote"
    provable = True

    def __init__(self, num_choices: int) -> None:
        if num_choices < 2:
            raise PolicyError("a choice task needs at least two options")
        self.num_choices = num_choices

    def describe(self) -> Dict[str, int | str]:
        return {"name": self.name, "num_choices": self.num_choices}

    def majority_value(self, answers: Sequence[Answer]) -> Optional[int]:
        """The winning choice (lowest-value tie-break), or None if no votes."""
        counts = [0] * self.num_choices
        for answer in answers:
            if answer is None:
                continue
            value = answer[0]
            if 0 <= value < self.num_choices:
                counts[value] += 1
        if not any(counts):
            return None
        best = max(counts)
        return counts.index(best)

    def compute_rewards(self, answers: Sequence[Answer], budget: int) -> List[int]:
        self.validate_answers(answers)
        n = len(answers)
        if n == 0:
            return []
        share = budget // n
        majority = self.majority_value(answers)
        rewards = [
            share
            if answer is not None
            and 0 <= answer[0] < self.num_choices
            and answer[0] == majority
            else 0
            for answer in answers
        ]
        return self._check_budget(rewards, budget)


class ProportionalAgreementPolicy(RewardPolicy):
    """Reward proportional to how many peers agree with the answer.

    A quality-aware incentive in the spirit of [9, 11]: the weight of
    answer j is ``count(A_j) − 1`` (its agreement degree); the budget is
    split pro rata (floored), so lone answers earn nothing.
    """

    name = "proportional-agreement"

    def __init__(self, num_choices: int) -> None:
        if num_choices < 2:
            raise PolicyError("a choice task needs at least two options")
        self.num_choices = num_choices

    def describe(self) -> Dict[str, int | str]:
        return {"name": self.name, "num_choices": self.num_choices}

    def compute_rewards(self, answers: Sequence[Answer], budget: int) -> List[int]:
        self.validate_answers(answers)
        counts: Dict[int, int] = {}
        for answer in answers:
            if answer is not None and 0 <= answer[0] < self.num_choices:
                counts[answer[0]] = counts.get(answer[0], 0) + 1
        weights = [
            counts.get(answer[0], 0) - 1
            if answer is not None and 0 <= answer[0] < self.num_choices
            else 0
            for answer in answers
        ]
        weights = [max(w, 0) for w in weights]
        total = sum(weights)
        if total == 0:
            return [0] * len(answers)
        rewards = [budget * w // total for w in weights]
        return self._check_budget(rewards, budget)


class DawidSkeneEMPolicy(RewardPolicy):
    """EM-based truth inference over multi-item labeling tasks.

    Each answer is a vector of ``num_items`` labels.  A simplified
    Dawid–Skene estimator alternates between (i) majority-weighted
    label posteriors and (ii) per-worker accuracy estimates; rewards
    are the budget split proportionally to estimated accuracy.
    """

    name = "dawid-skene-em"

    def __init__(self, num_choices: int, num_items: int, iterations: int = 10) -> None:
        if num_choices < 2 or num_items < 1:
            raise PolicyError("need >=2 choices and >=1 items")
        self.num_choices = num_choices
        self.num_items = num_items
        self.iterations = iterations
        self.answer_arity = num_items

    def describe(self) -> Dict[str, int | str]:
        return {
            "name": self.name,
            "num_choices": self.num_choices,
            "num_items": self.num_items,
            "iterations": self.iterations,
        }

    def infer(self, answers: Sequence[Answer]) -> tuple[List[int], List[float]]:
        """Return (estimated truths per item, estimated accuracy per worker)."""
        self.validate_answers(answers)
        workers = [a for a in answers]
        accuracies = [1.0 if a is not None else 0.0 for a in workers]
        truths = [0] * self.num_items
        for _ in range(self.iterations):
            # E-step: weighted vote per item.
            for item in range(self.num_items):
                scores = [0.0] * self.num_choices
                for worker, accuracy in zip(workers, accuracies):
                    if worker is None:
                        continue
                    label = worker[item]
                    if 0 <= label < self.num_choices:
                        scores[label] += accuracy
                truths[item] = scores.index(max(scores)) if any(scores) else 0
            # M-step: accuracy = fraction of items matching estimated truth.
            for index, worker in enumerate(workers):
                if worker is None:
                    accuracies[index] = 0.0
                    continue
                hits = sum(
                    1 for item in range(self.num_items) if worker[item] == truths[item]
                )
                # Laplace smoothing keeps EM from locking onto 0/1.
                accuracies[index] = (hits + 1) / (self.num_items + 2)
        return truths, accuracies

    def compute_rewards(self, answers: Sequence[Answer], budget: int) -> List[int]:
        if not answers:
            return []
        _, accuracies = self.infer(answers)
        total = sum(accuracies)
        if total == 0:
            return [0] * len(answers)
        rewards = [int(budget * acc / total) for acc in accuracies]
        return self._check_budget(rewards, budget)


class ReverseAuctionPolicy(RewardPolicy):
    """Budgeted uniform-price reverse auction ([7, 8] family).

    Answers carry ``[bid, data]``.  The ``k`` lowest bidders win and
    are each paid the (k+1)-th lowest bid (truthfulness-inducing
    uniform clearing price), capped at ``budget // k``.  Ties break by
    submission order.
    """

    name = "reverse-auction"
    answer_arity = 2

    def __init__(self, winners: int) -> None:
        if winners < 1:
            raise PolicyError("auction needs at least one winner slot")
        self.winners = winners

    def describe(self) -> Dict[str, int | str]:
        return {"name": self.name, "winners": self.winners}

    def compute_rewards(self, answers: Sequence[Answer], budget: int) -> List[int]:
        self.validate_answers(answers)
        bidders = [
            (answer[0], index)
            for index, answer in enumerate(answers)
            if answer is not None
        ]
        bidders.sort()
        winners = bidders[: self.winners]
        if not winners:
            return [0] * len(answers)
        cap = budget // len(winners)
        if len(bidders) > len(winners):
            clearing_price = min(bidders[len(winners)][0], cap)
        else:
            clearing_price = cap
        clearing_price = max(clearing_price, max(bid for bid, _ in winners))
        clearing_price = min(clearing_price, cap)
        rewards = [0] * len(answers)
        for bid, index in winners:
            if bid <= clearing_price:
                rewards[index] = clearing_price
        return self._check_budget(rewards, budget)


def policy_from_descriptor(descriptor: Dict) -> RewardPolicy:
    """Rebuild a policy instance from its :meth:`~RewardPolicy.describe`.

    The inverse of ``describe()``: what engine checkpoints persist, so
    a restarted engine can reconstruct each task's policy without any
    Python object state surviving the crash.
    """
    params = {str(k): v for k, v in dict(descriptor).items()}
    name = params.pop("name", None)
    constructors = {
        MajorityVotePolicy.name: MajorityVotePolicy,
        ProportionalAgreementPolicy.name: ProportionalAgreementPolicy,
        DawidSkeneEMPolicy.name: DawidSkeneEMPolicy,
        ReverseAuctionPolicy.name: ReverseAuctionPolicy,
    }
    constructor = constructors.get(name)
    if constructor is None:
        raise PolicyError(f"unknown policy descriptor {name!r}")
    try:
        return constructor(**params)
    except TypeError as exc:
        raise PolicyError(f"bad descriptor for policy {name!r}: {exc}") from exc
