"""Open-market infrastructure: board deployment and the court.

The marketplace contract (:mod:`repro.contracts.marketplace`) is
deployed once per market by an *operator* — any funded key; the board
holds no operator privileges afterwards — and names an *arbiter*, the
only party allowed to rule disputes.  Both roles live here, alongside
the board configuration defaults the engine and tests share.

The arbiter is deliberately thin: its verdict is computed from chain
data alone (the task contract's SNARK-proved reward vector and the
board's claim table), so any observer can re-derive every ruling —
the court adds no trusted quality judgment, only a signature.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro import observability as obs
from repro.chain.receipts import Receipt
from repro.chain.transaction import Transaction, encode_call, encode_create
from repro.contracts.marketplace import PPM, DisputeVerdict
from repro.core.anonymity import OneTaskAccount, derive_one_task_account
from repro.core.protocol import (
    DEFAULT_GAS_LIMIT,
    DEFAULT_GAS_PRICE,
    ZebraLancerSystem,
)
from repro.errors import ProtocolError

#: Board configuration defaults (block counts / token amounts).
DEFAULT_BID_WINDOW = 8
DEFAULT_ATTACH_WINDOW = 600
DEFAULT_CLAIM_WINDOW = 8
DEFAULT_DISPUTE_BOND = 400
DEFAULT_REP_HALF_LIFE = 64
DEFAULT_MIN_STAKE = 10


def board_config(
    bid_window: int = DEFAULT_BID_WINDOW,
    attach_window: int = DEFAULT_ATTACH_WINDOW,
    claim_window: int = DEFAULT_CLAIM_WINDOW,
    dispute_bond: int = DEFAULT_DISPUTE_BOND,
    rep_half_life: int = DEFAULT_REP_HALF_LIFE,
    min_stake: int = DEFAULT_MIN_STAKE,
) -> dict:
    """A marketplace config dict (the contract validates every field).

    ``attach_window`` defaults generously: the Algorithm-1 phases run
    *between* matching and attachment when the engine drives them, so
    the window must outlast a full engine run (default 512 rounds at
    one block per round).
    """
    return {
        "bid_window": bid_window,
        "attach_window": attach_window,
        "claim_window": claim_window,
        "dispute_bond": dispute_bond,
        "rep_half_life": rep_half_life,
        "min_stake": min_stake,
    }


def deploy_marketplace(
    system: ZebraLancerSystem,
    arbiter: bytes,
    config: Optional[dict] = None,
    seed: bytes = b"marketplace-operator",
) -> bytes:
    """Deploy one board; returns its address."""
    operator = derive_one_task_account(seed, "board-operator")
    system.fund_anonymous(operator.address)
    tx = Transaction(
        nonce=system.node.nonce_of(operator.address),
        gas_price=DEFAULT_GAS_PRICE,
        gas_limit=DEFAULT_GAS_LIMIT,
        to=None,
        value=0,
        data=encode_create(
            "ZebraLancerMarketplace",
            [system.registry_address, arbiter, config or board_config()],
        ),
    )
    receipt = system.send_reliable(tx, operator.keypair)
    if not receipt.success or receipt.contract_address is None:
        raise ProtocolError(f"board deployment failed: {receipt.error}")
    obs.count("market.deployments")
    return receipt.contract_address


@dataclass
class Ruling:
    """One decided dispute, in replayable terms."""

    listing_id: int
    verdict: DisputeVerdict
    claimed: int
    rewarded: int


class Arbiter:
    """The court key behind a board's dispute flow.

    ``decide`` is a pure function of chain state: a dispute is *upheld*
    exactly when a majority of the claimed slots earned zero task
    reward (the committed policy judgment says the work was junk), and
    the workers keep a bonus share proportional to the rewarded
    fraction.  Frivolous disputes — every claimed slot rewarded — are
    rejected outright, which is what makes griefing cost the bond.
    """

    def __init__(self, system: ZebraLancerSystem, seed: bytes = b"market-court") -> None:
        self.system = system
        self.account: OneTaskAccount = derive_one_task_account(seed, "arbiter")
        self.rulings: list[Ruling] = []

    @property
    def address(self) -> bytes:
        return self.account.address

    def decide(self, board_address: bytes, listing_id: int) -> DisputeVerdict:
        """Derive the verdict for a disputed listing from chain data."""
        node = self.system.node
        listing = node.call(board_address, "get_listing", [listing_id])
        if listing["dispute"] is None:
            raise ProtocolError("nothing to rule: the listing is not disputed")
        rewards = node.call(listing["task"], "get_rewards")
        claimed = sorted(listing["claims"])
        rewarded = sum(
            1
            for answer_index in claimed
            if answer_index < len(rewards) and rewards[answer_index] > 0
        )
        if not claimed:
            upheld, share = True, 0
        else:
            # Upheld when the rewarded claims are NOT the majority.
            upheld = rewarded * 2 <= len(claimed)
            share = rewarded * PPM // len(claimed)
        verdict = DisputeVerdict(
            listing_id=listing_id,
            upheld=upheld,
            worker_share_ppm=share if upheld else PPM,
            rationale=(
                f"{rewarded}/{len(claimed)} claimed slots rewarded by the "
                f"committed policy"
            ),
        )
        self.rulings.append(
            Ruling(
                listing_id=listing_id,
                verdict=verdict,
                claimed=len(claimed),
                rewarded=rewarded,
            )
        )
        return verdict

    def rule(self, board_address: bytes, listing_id: int) -> Receipt:
        """Decide and anchor the verdict (settlement happens in-call)."""
        verdict = self.decide(board_address, listing_id)
        system = self.system
        system.fund_anonymous(self.account.address, near=board_address)
        tx = Transaction(
            nonce=system.node.nonce_of(self.account.address),
            gas_price=DEFAULT_GAS_PRICE,
            gas_limit=DEFAULT_GAS_LIMIT,
            to=board_address,
            value=0,
            data=encode_call("rule_dispute", [listing_id, verdict.to_wire()]),
        )
        receipt = system.send_reliable(tx, self.account.keypair)
        if not receipt.success:
            raise ProtocolError(f"ruling rejected: {receipt.error}")
        obs.count("market.rulings")
        return receipt
