"""The concurrent multi-task protocol engine.

The serial clients in :mod:`repro.core.requester` / ``worker`` drive
one Algorithm-1 instance at a time, mining roughly one block per
transaction.  Real deployments overlap: many requesters run
TaskPublish / AnswerCollection / Reward concurrently against the same
chain, and throughput comes from amortising each block over a whole
wave of transactions.  :class:`ProtocolEngine` reproduces that shape
deterministically:

- a cooperative round-based scheduler steps every task's state machine
  in a fixed order, so two runs from the same seeds produce
  bit-identical block/receipt/reward transcripts;
- all in-flight transactions of a round (funding waves, deployments,
  submissions, reward instructions) coexist in the mempool — per-sender
  nonces come from the shared
  :class:`~repro.chain.txsender.NonceManager` — and land batched into
  the next block;
- the whole cohort registers at the RA under ONE on-chain commitment
  update (:meth:`ZebraLancerSystem.register_participants`);
- reward proofs from every task that finished collecting in the same
  round are proved together through the backend's ``prove_many``
  (Groth16 fans the batch out over a fork pool).

The engine never consults the wall clock: block timestamps come from
the :class:`~repro.chain.clock.SimClock` and every data structure is
iterated in insertion order, which is what the determinism tests pin.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import os
import random

from repro import observability as obs
from repro.crypto.hashing import sha256
from repro.errors import ProtocolError
from repro.chain.txsender import PendingTx
from repro.core.encryption import TaskKeyPair
from repro.core.policy import MajorityVotePolicy, RewardPolicy
from repro.core.protocol import (
    DEFAULT_GAS_ALLOWANCE,
    TaskHandle,
    ZebraLancerSystem,
)
from repro.core.requester import PreparedPublish, Requester, RewardJob
from repro.core.worker import PreparedSubmission, Worker
from repro.zksnark.backend import fanout_map

#: Task state-machine phases, in protocol order.
FUNDING = "funding"
PUBLISHING = "publishing"
FUNDING_WORKERS = "funding-workers"
SUBMITTING = "submitting"
COLLECTING = "collecting"
PROVING = "proving"
REWARDING = "rewarding"
DONE = "done"


class EngineStallError(ProtocolError):
    """The scheduler ran out of rounds with tasks still in flight."""


class _KeygenJob:
    """Picklable fork-pool worker: one (seed, bits) → RSA task keypair."""

    def __call__(self, request) -> TaskKeyPair:
        seed, bits = request
        return TaskKeyPair.generate(bits=bits, rng=random.Random(seed))


@dataclass
class TaskSpec:
    """One complete task the engine will drive end to end.

    ``answers`` holds one entry per worker; ``None`` models the
    paper's ⊥ (an absent worker), in which case the task closes at its
    answer deadline instead of on the n-th submission.
    """

    requester: Requester
    workers: List[Worker]
    answers: List[Optional[Sequence[int]]]
    policy: RewardPolicy
    description: str = "task"
    budget: int = 1_000
    answer_window: int = 32
    instruction_window: int = 32
    rsa_bits: int = 1024
    audit: bool = False

    def __post_init__(self) -> None:
        if len(self.workers) != len(self.answers):
            raise ProtocolError(
                f"{len(self.workers)} workers but {len(self.answers)} answers"
            )
        if not any(answer is not None for answer in self.answers):
            raise ProtocolError("a task needs at least one present answer")


@dataclass
class TaskOutcome:
    """What one task did, in chain-derived (deterministic) terms."""

    index: int
    requester: str
    address: bytes
    rewards: List[int] = field(default_factory=list)
    audit_passed: Optional[bool] = None
    #: Phase-completion block heights, in transition order.
    phase_blocks: Dict[str, int] = field(default_factory=dict)
    #: Phase-completion simulated timestamps (SimClock seconds).
    phase_times: Dict[str, int] = field(default_factory=dict)

    def phase_latency_blocks(self, start: str, end: str) -> int:
        return self.phase_blocks[end] - self.phase_blocks[start]


@dataclass
class EngineReport:
    """The result of one engine run.

    ``transcript()`` (and its digest) covers everything consensus
    observed — block hashes, included transactions, receipts statuses,
    rewards — which is exactly what two same-seed runs must agree on.
    """

    outcomes: List[TaskOutcome]
    rounds: int
    blocks_mined: int
    start_height: int
    end_height: int
    transactions: int
    wall_seconds: float
    sim_seconds: int
    blocks: List[Tuple[int, str, Tuple[str, ...]]] = field(default_factory=list)

    @property
    def tasks(self) -> int:
        return len(self.outcomes)

    @property
    def tasks_per_block(self) -> float:
        return self.tasks / self.blocks_mined if self.blocks_mined else 0.0

    def transcript(self) -> List[str]:
        lines = [
            f"blocks={self.blocks_mined} txs={self.transactions}",
        ]
        for number, block_hash, tx_hashes in self.blocks:
            lines.append(f"block {number} {block_hash} [{','.join(tx_hashes)}]")
        for outcome in self.outcomes:
            phases = " ".join(
                f"{phase}@{height}" for phase, height in outcome.phase_blocks.items()
            )
            lines.append(
                f"task {outcome.index} {outcome.address.hex()} "
                f"rewards={outcome.rewards} audit={outcome.audit_passed} {phases}"
            )
        return lines

    def transcript_digest(self) -> bytes:
        return sha256("\n".join(self.transcript()).encode())


class _TaskRunner:
    """The per-task state machine the scheduler steps each round.

    Every transition only *broadcasts* transactions (never mines); the
    engine owns the block cadence, so a whole wave of runners shares
    each block.
    """

    def __init__(
        self,
        spec: TaskSpec,
        index: int,
        engine: "ProtocolEngine",
        encryption_keys: Optional[TaskKeyPair] = None,
    ) -> None:
        self.spec = spec
        self.index = index
        self.engine = engine
        self.state = FUNDING
        self.handle: Optional[TaskHandle] = None
        self.outcome = TaskOutcome(
            index=index, requester=spec.requester.identity, address=b""
        )
        self.reward_job: Optional[RewardJob] = None
        #: In-flight subset (``service`` drops confirmed entries) …
        self._pending: List[PendingTx] = []
        #: … while the wave keeps every broadcast of the current phase
        #: in order, receipts included (PendingTx is mutated in place).
        self._wave: List[PendingTx] = []
        self._submissions: List[Tuple[Worker, PreparedSubmission]] = []

        # Stage the announcement now (it only reads the chain) and fund
        # α_R with gas + budget in ONE faucet transfer.
        self.prepared: PreparedPublish = spec.requester.prepare_publish(
            spec.policy,
            spec.description,
            num_answers=len(spec.workers),
            budget=spec.budget,
            answer_window=spec.answer_window,
            instruction_window=spec.instruction_window,
            rsa_bits=spec.rsa_bits,
            encryption_keys=encryption_keys,
        )
        self._broadcast(
            [
                engine.testnet.fund_async(
                    self.prepared.account.address,
                    DEFAULT_GAS_ALLOWANCE + spec.budget,
                )
            ]
        )

    @property
    def done(self) -> bool:
        return self.state == DONE

    def _broadcast(self, pendings: List[PendingTx]) -> None:
        self._wave = pendings
        self._pending = list(pendings)

    def _service(self) -> bool:
        """Poll/retry in-flight transactions; True when all confirmed."""
        self._pending = self.engine.tx_sender.service(self._pending)
        return not self._pending

    def _mark(self, phase: str) -> None:
        self.outcome.phase_blocks[phase] = self.engine.testnet.height
        self.outcome.phase_times[phase] = self.engine.testnet.clock.now

    def step(self) -> None:
        if self.state == FUNDING:
            self._step_funding()
        elif self.state == PUBLISHING:
            self._step_publishing()
        elif self.state == FUNDING_WORKERS:
            self._step_funding_workers()
        elif self.state == SUBMITTING:
            self._step_submitting()
        elif self.state == COLLECTING:
            self._step_collecting()
        elif self.state == REWARDING:
            self._step_rewarding()
        # PROVING waits on the engine's proving pool; DONE is terminal.

    def _step_funding(self) -> None:
        if not self._service():
            return
        self._mark(FUNDING)
        self._broadcast(
            [
                self.engine.tx_sender.broadcast(
                    self.prepared.transaction, self.prepared.account.keypair
                )
            ]
        )
        self.state = PUBLISHING

    def _step_publishing(self) -> None:
        if not self._service():
            return
        receipt = self._wave[0].receipt
        self.handle = self.spec.requester.complete_publish(self.prepared, receipt)
        self.outcome.address = self.handle.address
        self._mark(PUBLISHING)
        # Stage every present worker's submission and fund their
        # one-task addresses as one faucet wave.
        pendings: List[PendingTx] = []
        for worker, answer in zip(self.spec.workers, self.spec.answers):
            if answer is None:
                continue
            prepared = worker.prepare_submission(self.handle, answer)
            self._submissions.append((worker, prepared))
            pendings.append(
                self.engine.testnet.fund_async(
                    prepared.account.address, DEFAULT_GAS_ALLOWANCE
                )
            )
        self._broadcast(pendings)
        self.state = FUNDING_WORKERS

    def _step_funding_workers(self) -> None:
        if not self._service():
            return
        self._mark(FUNDING_WORKERS)
        self._broadcast(
            [
                self.engine.tx_sender.broadcast(
                    prepared.transaction, prepared.account.keypair
                )
                for _, prepared in self._submissions
            ]
        )
        self.state = SUBMITTING

    def _step_submitting(self) -> None:
        if not self._service():
            return
        for (worker, prepared), pending in zip(self._submissions, self._wave):
            receipt = pending.receipt
            if not receipt.success:
                raise ProtocolError(
                    f"submission to task {self.index} failed: {receipt.error}"
                )
            worker.complete_submission(prepared, receipt)
        self._mark(SUBMITTING)
        self.state = COLLECTING

    def _step_collecting(self) -> None:
        status = self.engine.node.call(self.handle.address, "get_status")
        if not status["closed"]:
            return  # absent workers: wait for the answer deadline
        self._mark(COLLECTING)
        self.reward_job = self.spec.requester.prepare_reward(self.handle)
        self.engine.enqueue_proof(self)
        self.state = PROVING

    def deliver_proof(self, proof) -> None:
        """Proving-pool callback: broadcast the proved instruction."""
        self._mark(PROVING)
        tx = self.spec.requester.reward_transaction(self.reward_job, proof)
        account = self.spec.requester.task_account(self.handle)
        self._broadcast([self.engine.tx_sender.broadcast(tx, account.keypair)])
        self.state = REWARDING

    def _step_rewarding(self) -> None:
        if not self._service():
            return
        receipt = self._wave[0].receipt
        if not receipt.success:
            raise ProtocolError(
                f"reward instruction for task {self.index} failed: {receipt.error}"
            )
        self._mark(REWARDING)
        self.outcome.rewards = self.handle.rewards()
        if self.spec.audit:
            self.outcome.audit_passed = self.handle.audit_submissions()
        self.state = DONE


class ProtocolEngine:
    """Run many :class:`TaskSpec` instances against one shared chain."""

    def __init__(
        self,
        system: ZebraLancerSystem,
        specs: Sequence[TaskSpec],
        max_rounds: int = 512,
    ) -> None:
        if not specs:
            raise ProtocolError("nothing to run")
        self.system = system
        self.testnet = system.testnet
        self.tx_sender = system.testnet.tx_sender
        self.node = system.node
        self.max_rounds = max_rounds
        self.specs = list(specs)
        self._prove_queue: List[_TaskRunner] = []

    def enqueue_proof(self, runner: _TaskRunner) -> None:
        self._prove_queue.append(runner)

    def _pregenerate_encryption_keys(self) -> List[TaskKeyPair]:
        """Generate every task's RSA keypair across a fork pool.

        The seeds are exactly what each requester's ``prepare_publish``
        would derive on its own (accounting for requesters publishing
        several tasks), so the keys — and therefore the transcript —
        are identical to inline generation, just ~cores times faster.
        RSA keygen is the single largest client-side cost per task.
        """
        with obs.span("engine.keygen", tasks=len(self.specs)):
            offsets: Dict[int, int] = {}
            requests = []
            for spec in self.specs:
                requester = spec.requester
                offset = offsets.get(id(requester), 0)
                offsets[id(requester)] = offset + 1
                requests.append(
                    (
                        requester.encryption_rng_seed(
                            requester.task_counter + offset
                        ),
                        spec.rsa_bits,
                    )
                )
            return fanout_map(
                _KeygenJob(), requests, os.cpu_count() or 1, chunked=False
            )

    def run(self) -> EngineReport:
        import time

        with obs.span("engine.run", tasks=len(self.specs)) as run_span:
            wall_start = time.perf_counter()
            report = self._run()
            report.wall_seconds = time.perf_counter() - wall_start
            run_span.set_attrs(
                blocks=report.blocks_mined, rounds=report.rounds
            )
        if obs.TRACER.enabled:
            obs.count("engine.runs")
            obs.count("engine.tasks", len(self.specs))
            obs.count("engine.blocks", report.blocks_mined)
        return report

    def _run(self) -> EngineReport:
        start_height = self.testnet.height
        sim_start = self.testnet.clock.now
        encryption_keys = self._pregenerate_encryption_keys()
        runners = [
            _TaskRunner(spec, index, self, encryption_keys=encryption_keys[index])
            for index, spec in enumerate(self.specs)
        ]
        rounds = 0
        blocks = 0
        while True:
            with obs.span("engine.round", round=rounds):
                for runner in runners:
                    runner.step()
                self._drain_proving()
            if all(runner.done for runner in runners):
                break
            if rounds >= self.max_rounds:
                stuck = [r.index for r in runners if not r.done]
                raise EngineStallError(
                    f"tasks {stuck} still in flight after {rounds} rounds"
                )
            self.testnet.mine_block()
            blocks += 1
            rounds += 1

        end_height = self.testnet.height
        block_lines, transactions = _chain_segment(
            self.node, start_height, end_height
        )
        return EngineReport(
            outcomes=[runner.outcome for runner in runners],
            rounds=rounds,
            blocks_mined=blocks,
            start_height=start_height,
            end_height=end_height,
            transactions=transactions,
            wall_seconds=0.0,
            sim_seconds=self.testnet.clock.now - sim_start,
            blocks=block_lines,
        )

    def _drain_proving(self) -> None:
        """Prove every job staged this round as ONE backend batch."""
        if not self._prove_queue:
            return
        queue, self._prove_queue = self._prove_queue, []
        requests = [
            (r.reward_job.proving_key, r.reward_job.circuit, r.reward_job.instance)
            for r in queue
        ]
        proofs = self.system.backend.prove_many(requests)
        for runner, proof in zip(queue, proofs):
            runner.deliver_proof(proof)


def _chain_segment(
    node, start_height: int, end_height: int
) -> Tuple[List[Tuple[int, str, Tuple[str, ...]]], int]:
    """(number, hash, tx hashes) per canonical block in (start, end]."""
    lines: List[Tuple[int, str, Tuple[str, ...]]] = []
    transactions = 0
    for block in node.canonical_blocks(start_height + 1, end_height):
        tx_hashes = tuple(stx.tx_hash.hex() for stx in block.transactions)
        transactions += len(tx_hashes)
        lines.append((block.number, block.block_hash.hex(), tx_hashes))
    return lines, transactions


# ----- spec construction and the serial baseline --------------------------------------


def engine_system(
    num_tasks: int,
    workers_per_task: int,
    backend_name: str = "mock",
    seed: bytes = b"engine-system",
    execution_lanes: int = 1,
    execution_workers: int = 1,
    **system_kwargs: Any,
) -> ZebraLancerSystem:
    """A :class:`ZebraLancerSystem` sized for a concurrent wave.

    Block selection budgets by each transaction's gas *limit*, so the
    block gas limit must admit a whole wave of client transactions
    (deployments, submissions, reward instructions all reserve
    ``DEFAULT_GAS_LIMIT``) for batching to happen at all.
    """
    import repro.contracts  # noqa: F401  (side effect: registers contract classes)
    from dataclasses import replace

    from repro.chain.network import Testnet
    from repro.core.protocol import DEFAULT_GAS_LIMIT
    from repro.profiles import TEST

    wave = max(1, num_tasks * (workers_per_task + 2))
    testnet = Testnet(
        gas_limit=max(30_000_000, wave * DEFAULT_GAS_LIMIT),
        execution_lanes=execution_lanes,
        execution_workers=execution_workers,
    )
    # The registration tree must hold the whole cohort (N requesters +
    # N·M workers) with headroom for extra registrations by the tests.
    cohort = num_tasks * (workers_per_task + 1)
    depth = TEST.merkle_depth
    while (1 << depth) < 2 * cohort:
        depth += 1
    profile = replace(TEST, name=f"test-d{depth}", merkle_depth=depth)
    return ZebraLancerSystem(
        profile=profile,
        backend_name=backend_name,
        seed=seed,
        testnet=testnet,
        **system_kwargs,
    )


def make_uniform_specs(
    system: ZebraLancerSystem,
    num_tasks: int,
    workers_per_task: int,
    num_choices: int = 4,
    budget: int = 1_200,
    seed: int = 0,
    accuracy: float = 0.8,
    absent_probability: float = 0.0,
    rsa_bits: int = 1024,
    audit: bool = False,
) -> List[TaskSpec]:
    """Build N homogeneous majority-vote tasks with sampled answers.

    Answers are drawn with :mod:`repro.core.simulation` semantics (a
    uniform ground truth per task; each worker reports it with
    ``accuracy``, is absent with ``absent_probability``), from a
    ``random.Random(seed)`` — the same seed always yields the same
    specs, which is what the determinism tests replay.  All
    ``N·(M+1)`` identities register under one commitment update.
    """
    import random

    rng = random.Random(seed)
    requesters = [
        Requester(system, f"requester-{i}", register=False) for i in range(num_tasks)
    ]
    workers = [
        [
            Worker(system, f"worker-{i}-{j}", register=False)
            for j in range(workers_per_task)
        ]
        for i in range(num_tasks)
    ]
    entries = [(r.identity, r.keys.public_key) for r in requesters]
    for cohort in workers:
        entries.extend((w.identity, w.keys.public_key) for w in cohort)
    certificates = system.register_participants(entries)
    for client, certificate in zip(
        requesters + [w for cohort in workers for w in cohort], certificates
    ):
        client.certificate = certificate

    from repro.core.simulation import sample_answer

    specs: List[TaskSpec] = []
    for i in range(num_tasks):
        truth = rng.randrange(num_choices)
        answers: List[Optional[Sequence[int]]] = [
            sample_answer(rng, truth, num_choices, accuracy, absent_probability)
            for _ in range(workers_per_task)
        ]
        if not any(answer is not None for answer in answers):
            answers[0] = [truth]  # keep the task rewardable
        specs.append(
            TaskSpec(
                requester=requesters[i],
                workers=workers[i],
                answers=answers,
                policy=MajorityVotePolicy(num_choices=num_choices),
                description=f"engine-task-{i}",
                budget=budget,
                rsa_bits=rsa_bits,
                audit=audit,
            )
        )
    return specs


def run_serial(system: ZebraLancerSystem, specs: Sequence[TaskSpec]) -> EngineReport:
    """The one-task-at-a-time baseline over the same specs.

    Drives each spec through the synchronous client APIs (mining
    blocks per transaction, proving per task) — what the throughput
    bench compares the engine against.
    """
    import time

    start_height = system.testnet.height
    sim_start = system.testnet.clock.now
    wall_start = time.perf_counter()
    outcomes: List[TaskOutcome] = []
    for index, spec in enumerate(specs):
        handle = spec.requester.publish_task(
            spec.policy,
            spec.description,
            num_answers=len(spec.workers),
            budget=spec.budget,
            answer_window=spec.answer_window,
            instruction_window=spec.instruction_window,
            rsa_bits=spec.rsa_bits,
        )
        outcome = TaskOutcome(
            index=index, requester=spec.requester.identity, address=handle.address
        )
        outcome.phase_blocks[PUBLISHING] = system.testnet.height
        for worker, answer in zip(spec.workers, spec.answers):
            if answer is not None:
                worker.submit_answer(handle, answer)
        system.testnet.mine_until(handle.is_collection_closed)
        outcome.phase_blocks[COLLECTING] = system.testnet.height
        receipt = spec.requester.evaluate_and_reward(handle)
        if not receipt.success:
            raise ProtocolError(f"reward for task {index} failed: {receipt.error}")
        outcome.phase_blocks[REWARDING] = system.testnet.height
        outcome.rewards = handle.rewards()
        if spec.audit:
            outcome.audit_passed = handle.audit_submissions()
        outcomes.append(outcome)
    end_height = system.testnet.height
    block_lines, transactions = _chain_segment(system.node, start_height, end_height)
    return EngineReport(
        outcomes=outcomes,
        rounds=0,
        blocks_mined=end_height - start_height,
        start_height=start_height,
        end_height=end_height,
        transactions=transactions,
        wall_seconds=time.perf_counter() - wall_start,
        sim_seconds=system.testnet.clock.now - sim_start,
        blocks=block_lines,
    )
