"""The concurrent multi-task protocol engine, with resilience built in.

The serial clients in :mod:`repro.core.requester` / ``worker`` drive
one Algorithm-1 instance at a time, mining roughly one block per
transaction.  Real deployments overlap: many requesters run
TaskPublish / AnswerCollection / Reward concurrently against the same
chain, and throughput comes from amortising each block over a whole
wave of transactions.  :class:`ProtocolEngine` reproduces that shape
deterministically:

- a cooperative round-based scheduler steps every task's state machine
  in a fixed order, so two runs from the same seeds produce
  bit-identical block/receipt/reward transcripts;
- all in-flight transactions of a round (funding waves, deployments,
  submissions, reward instructions) coexist in the mempool — per-sender
  nonces come from the shared
  :class:`~repro.chain.txsender.NonceManager` — and land batched into
  the next block;
- the whole cohort registers at the RA under ONE on-chain commitment
  update (:meth:`ZebraLancerSystem.register_participants`);
- reward proofs from every task that finished collecting in the same
  round are proved together through the backend's ``prove_many``
  (Groth16 fans the batch out over a fork pool).

On top of the scheduler sits the resilience layer:

- every runner is wrapped in a
  :class:`~repro.core.supervisor.TaskSupervisor` — recoverable
  failures get one chain-reconciliation pass (:meth:`_TaskRunner
  .recover`), then capped-exponential retries, and a circuit breaker
  that *quarantines* a persistently failing task into the contract's
  timeout-refund path (Algorithm 1 lines 18-21) without stalling its
  siblings;
- the engine can :meth:`~ProtocolEngine.checkpoint` its entire
  client-side state (per-task state machines, in-flight transactions,
  nonce reservations) into a versioned snapshot; a crashed engine
  :meth:`~ProtocolEngine.resume`\\ d from the latest checkpoint
  re-polls receipts and re-derives every secret, converging to the
  same outcomes with exactly-once payment;
- an admission gate (:meth:`~ProtocolEngine.admitting`) pauses new
  broadcast waves while the mempool sits above a high watermark, so
  oversized cohorts degrade into longer runs instead of dropped
  transactions.

The engine never consults the wall clock: block timestamps come from
the :class:`~repro.chain.clock.SimClock` and every data structure is
iterated in insertion order, which is what the determinism tests pin.
Even retry timing is deterministic (seeded-jitter backoff), so chaos
runs replay exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import os
import random

from repro import observability as obs
from repro.crypto import ecdsa
from repro.crypto.hashing import sha256
from repro.errors import ChainError, CheckpointError, ProtocolError
from repro.chain.transaction import Transaction, encode_call
from repro.chain.txsender import PendingTx
from repro.core.checkpoint import (
    CheckpointStore,
    EngineCheckpoint,
    PendingTxSnapshot,
    TaskSnapshot,
    decode_checkpoint,
    encode_checkpoint,
)
from repro.core.encryption import TaskKeyPair
from repro.core.policy import (
    MajorityVotePolicy,
    RewardPolicy,
    policy_from_descriptor,
)
from repro.core.protocol import (
    DEFAULT_GAS_ALLOWANCE,
    DEFAULT_GAS_LIMIT,
    DEFAULT_GAS_PRICE,
    TaskHandle,
    ZebraLancerSystem,
)
from repro.core.requester import PreparedPublish, Requester, RewardJob
from repro.core.supervisor import RECOVERABLE, RetryPolicy, TaskSupervisor
from repro.core.worker import PreparedSubmission, Worker
from repro.zksnark.backend import fanout_map

#: Task state-machine phases, in protocol order.
FUNDING = "funding"
PUBLISHING = "publishing"
FUNDING_WORKERS = "funding-workers"
SUBMITTING = "submitting"
COLLECTING = "collecting"
PROVING = "proving"
REWARDING = "rewarding"
#: Resilience phases (never entered on the healthy path).
SETTLING = "settling"
QUARANTINED = "quarantined"
DONE = "done"

#: Terminal task statuses (chain-derived where a contract exists).
STATUS_COMPLETED = "completed"
STATUS_DEFAULTED = "defaulted"
STATUS_ABORTED = "aborted"
STATUS_FAILED = "failed"
SETTLED_PHASES = (STATUS_COMPLETED, STATUS_DEFAULTED, STATUS_ABORTED)

#: Requester behaviour modes a :class:`TaskSpec` can model.
REQUESTER_HONEST = "honest"
REQUESTER_STONEWALL = "stonewall"  # collects answers, never instructs
REQUESTER_VANISH = "vanish"  # disappears right after publishing


class EngineStallError(ProtocolError):
    """The scheduler ran out of rounds with tasks still in flight."""


class SimulatedEngineCrash(RuntimeError):
    """Raised by a crash hook to kill the engine mid-run.

    Deliberately NOT a :class:`~repro.errors.ProtocolError`: the
    supervisors must never catch a simulated process death — it has to
    unwind the whole scheduler, exactly like a real crash would.
    """


class _KeygenJob:
    """Picklable fork-pool worker: one (seed, bits) → RSA task keypair."""

    def __call__(self, request) -> TaskKeyPair:
        seed, bits = request
        return TaskKeyPair.generate(bits=bits, rng=random.Random(seed))


@dataclass
class TaskSpec:
    """One complete task the engine will drive end to end.

    ``answers`` holds one entry per worker; ``None`` models the
    paper's ⊥ (an absent worker), in which case the task closes at its
    answer deadline instead of on the n-th submission.  A task whose
    answers are ALL absent is legal: the engine routes it through the
    contract's ``finalize_timeout`` abort for a full refund.

    ``requester_mode`` selects a byzantine requester ("stonewall"
    collects answers but never instructs; "vanish" disappears right
    after publishing) — either way the supervisor quarantines the task
    and the timeout path even-splits the budget over the submitters.
    ``equivocators`` lists worker indices that additionally submit a
    *conflicting* answer from a sybil address; the contract's Link
    check must reject those while the honest sibling lands.
    """

    requester: Requester
    workers: List[Worker]
    answers: List[Optional[Sequence[int]]]
    policy: RewardPolicy
    description: str = "task"
    budget: int = 1_000
    answer_window: int = 32
    instruction_window: int = 32
    rsa_bits: int = 1024
    audit: bool = False
    requester_mode: str = REQUESTER_HONEST
    equivocators: List[int] = field(default_factory=list)
    #: Sharded chains only: pin this task's contract to the shard of
    #: another address (a marketplace board static-reads its listed
    #: tasks, so they must share its shard).  Ignored off shards.
    colocate: Optional[bytes] = None

    def __post_init__(self) -> None:
        if len(self.workers) != len(self.answers):
            raise ProtocolError(
                f"{len(self.workers)} workers but {len(self.answers)} answers"
            )
        modes = (REQUESTER_HONEST, REQUESTER_STONEWALL, REQUESTER_VANISH)
        if self.requester_mode not in modes:
            raise ProtocolError(f"unknown requester mode {self.requester_mode!r}")
        for index in self.equivocators:
            if not 0 <= index < len(self.workers):
                raise ProtocolError(f"equivocator index {index} out of range")
            if self.answers[index] is None:
                raise ProtocolError(
                    "an equivocator needs a present honest answer to conflict with"
                )


@dataclass
class TaskOutcome:
    """What one task did, in chain-derived (deterministic) terms."""

    index: int
    requester: str
    address: bytes
    rewards: List[int] = field(default_factory=list)
    audit_passed: Optional[bool] = None
    #: Terminal status: completed / defaulted / aborted / failed.
    status: str = ""
    #: True when the circuit breaker routed this task to the timeout path.
    quarantined: bool = False
    #: Phase-completion block heights, in transition order.
    phase_blocks: Dict[str, int] = field(default_factory=dict)
    #: Phase-completion simulated timestamps (SimClock seconds).
    phase_times: Dict[str, int] = field(default_factory=dict)

    def phase_latency_blocks(self, start: str, end: str) -> int:
        return self.phase_blocks[end] - self.phase_blocks[start]


@dataclass
class EngineReport:
    """The result of one engine run.

    ``transcript()`` (and its digest) covers everything consensus
    observed — block hashes, included transactions, receipts statuses,
    rewards — which is exactly what two same-seed runs must agree on.
    ``outcome_lines()`` is the weaker, crash-tolerant comparison: two
    runs that crashed and recovered differently still agree on each
    task's (address, status, rewards), even though block heights moved.
    """

    outcomes: List[TaskOutcome]
    rounds: int
    blocks_mined: int
    start_height: int
    end_height: int
    transactions: int
    wall_seconds: float
    sim_seconds: int
    blocks: List[Tuple[int, str, Tuple[str, ...]]] = field(default_factory=list)
    #: Resilience counters: retries, recoveries, quarantined, pauses, …
    resilience: Dict[str, int] = field(default_factory=dict)

    @property
    def tasks(self) -> int:
        return len(self.outcomes)

    @property
    def tasks_per_block(self) -> float:
        return self.tasks / self.blocks_mined if self.blocks_mined else 0.0

    def transcript(self) -> List[str]:
        lines = [
            f"blocks={self.blocks_mined} txs={self.transactions}",
        ]
        for number, block_hash, tx_hashes in self.blocks:
            lines.append(f"block {number} {block_hash} [{','.join(tx_hashes)}]")
        for outcome in self.outcomes:
            phases = " ".join(
                f"{phase}@{height}" for phase, height in outcome.phase_blocks.items()
            )
            lines.append(
                f"task {outcome.index} {outcome.address.hex()} "
                f"rewards={outcome.rewards} audit={outcome.audit_passed} "
                f"status={outcome.status} {phases}"
            )
        return lines

    def transcript_digest(self) -> bytes:
        return sha256("\n".join(self.transcript()).encode())

    def outcome_lines(self) -> List[str]:
        """Crash-invariant per-task results (address, status, rewards)."""
        return [
            f"task {o.index} {o.address.hex()} status={o.status} "
            f"rewards={o.rewards}"
            for o in self.outcomes
        ]


class _TaskRunner:
    """The per-task state machine the scheduler steps each round.

    Every transition only *broadcasts* transactions (never mines); the
    engine owns the block cadence, so a whole wave of runners shares
    each block.  A runner can also be rebuilt from a
    :class:`~repro.core.checkpoint.TaskSnapshot`: the recorded
    transaction hashes are re-polled against the surviving chain, so a
    broadcast that landed before the crash is adopted instead of
    re-sent (exactly-once under restart).
    """

    def __init__(
        self,
        spec: TaskSpec,
        index: int,
        engine: "ProtocolEngine",
        encryption_keys: Optional[TaskKeyPair] = None,
        snapshot: Optional[TaskSnapshot] = None,
    ) -> None:
        self.spec = spec
        self.index = index
        self.engine = engine
        self.state = FUNDING
        self.handle: Optional[TaskHandle] = None
        self.outcome = TaskOutcome(
            index=index, requester=spec.requester.identity, address=b""
        )
        self.reward_job: Optional[RewardJob] = None
        self.quarantine_reason = ""
        #: In-flight subset (``service`` drops confirmed entries) …
        self._pending: List[PendingTx] = []
        #: … while the wave keeps every broadcast of the current phase
        #: in order, receipts included (PendingTx is mutated in place).
        self._wave: List[PendingTx] = []
        self._submissions: List[Tuple[Worker, Sequence[int], PreparedSubmission]] = []
        #: Staged/broadcast equivocating submissions (expected to revert).
        self._byzantine_staged: List[Tuple[Any, Transaction]] = []
        self._byzantine_wave: List[PendingTx] = []
        self._byzantine_pending: List[PendingTx] = []
        #: True once the initial funding wave went out (backpressure gate).
        self._started = False
        #: True while ``_wave`` holds a finalize_timeout settlement.
        self._settling = False
        #: One re-prove allowance per task (see ``recover``).
        self._reproved = False

        # Stage the announcement now (it only reads the chain).  A
        # restored runner pins the derivation index recorded in its
        # snapshot, landing on the same one-task account, RSA keypair
        # and predicted contract address the crashed run used.
        self.task_index = (
            snapshot.task_index if snapshot is not None
            else spec.requester.task_counter
        )
        self.prepared: PreparedPublish = spec.requester.prepare_publish(
            spec.policy,
            spec.description,
            num_answers=len(spec.workers),
            budget=spec.budget,
            answer_window=spec.answer_window,
            instruction_window=spec.instruction_window,
            rsa_bits=spec.rsa_bits,
            encryption_keys=encryption_keys,
            task_index=self.task_index,
        )
        if snapshot is not None:
            self._restore(snapshot)

    @property
    def done(self) -> bool:
        return self.state == DONE

    # ----- wave plumbing --------------------------------------------------------------

    def _broadcast(self, pendings: List[PendingTx]) -> None:
        self._wave = pendings
        self._pending = list(pendings)

    def _service(self) -> bool:
        """Poll/retry in-flight transactions; True when all confirmed."""
        self._pending = self.engine.tx_sender.service(self._pending)
        return not self._pending

    def _mark(self, phase: str) -> None:
        self.outcome.phase_blocks[phase] = self.engine.testnet.height
        self.outcome.phase_times[phase] = self.engine.testnet.clock.now

    def _status(self) -> Dict[str, Any]:
        return self.engine.node.call(self.handle.address, "get_status")

    def _contract_deployed(self) -> bool:
        try:
            self.engine.node.call(self.prepared.predicted_address, "get_phase")
        except ChainError:
            return False
        return True

    # ----- the state machine ----------------------------------------------------------

    def step(self) -> None:
        if self.state == FUNDING:
            self._step_funding()
        elif self.state == PUBLISHING:
            self._step_publishing()
        elif self.state == FUNDING_WORKERS:
            self._step_funding_workers()
        elif self.state == SUBMITTING:
            self._step_submitting()
        elif self.state == COLLECTING:
            self._step_collecting()
        elif self.state == REWARDING:
            self._step_rewarding()
        elif self.state == SETTLING:
            self._step_settling()
        elif self.state == QUARANTINED:
            self._step_quarantined()
        # PROVING waits on the engine's proving pool; DONE is terminal.

    def _step_funding(self) -> None:
        if not self._started:
            # The admission gate: while the mempool sits above its high
            # watermark, new tasks wait instead of piling more load on.
            if not self.engine.admitting():
                return
            self._started = True
            if self.spec.colocate is not None:
                bind = getattr(self.engine.testnet, "bind", None)
                if bind is not None:
                    bind(self.prepared.predicted_address, self.spec.colocate)
            self._broadcast(
                [
                    self.engine.testnet.fund_async(
                        self.prepared.account.address,
                        DEFAULT_GAS_ALLOWANCE + self.spec.budget,
                        near=self.prepared.predicted_address,
                    )
                ]
            )
            return
        if not self._service():
            return
        self._mark(FUNDING)
        self._broadcast(
            [
                self.engine.tx_sender.broadcast(
                    self.prepared.transaction, self.prepared.account.keypair
                )
            ]
        )
        self.state = PUBLISHING

    def _step_publishing(self) -> None:
        if not self._service():
            return
        receipt = self._wave[0].receipt
        self.handle = self.spec.requester.complete_publish(self.prepared, receipt)
        self._after_publish()

    def _after_publish(self) -> None:
        """Adopt the deployed contract and stage the worker wave.

        Shared by the happy path and publish-recovery (a deployment
        that landed under a receipt the crashed engine never saw).
        """
        self.outcome.address = self.handle.address
        self._mark(PUBLISHING)
        # Stage every present worker's submission and fund their
        # one-task addresses (plus any equivocating sybil addresses)
        # as one faucet wave.
        pendings: List[PendingTx] = []
        self._submissions = []
        for worker, answer in zip(self.spec.workers, self.spec.answers):
            if answer is None:
                continue
            prepared = worker.prepare_submission(self.handle, answer)
            self._submissions.append((worker, answer, prepared))
            pendings.append(
                self.engine.testnet.fund_async(
                    prepared.account.address,
                    DEFAULT_GAS_ALLOWANCE,
                    near=self.handle.address,
                )
            )
        self._stage_equivocations()
        for account, _ in self._byzantine_staged:
            pendings.append(
                self.engine.testnet.fund_async(
                    account.address, DEFAULT_GAS_ALLOWANCE, near=self.handle.address
                )
            )
        self._broadcast(pendings)
        self.state = FUNDING_WORKERS

    def _stage_equivocations(self) -> None:
        if not self.spec.equivocators:
            self._byzantine_staged = []
            return
        from repro.core.attacks import prepare_equivocation

        self._byzantine_staged = []
        for attempt, worker_index in enumerate(self.spec.equivocators, start=1):
            worker = self.spec.workers[worker_index]
            answer = self.spec.answers[worker_index]
            conflicting = [value + 1 for value in answer]
            account, tx = prepare_equivocation(
                worker, self.handle, conflicting, attempt=attempt
            )
            self._byzantine_staged.append((account, tx))

    def _step_funding_workers(self) -> None:
        if not self._service():
            return
        self._mark(FUNDING_WORKERS)
        self._broadcast(
            [
                self.engine.tx_sender.broadcast(
                    prepared.transaction, prepared.account.keypair
                )
                for _, _, prepared in self._submissions
            ]
        )
        self._byzantine_wave = [
            self.engine.tx_sender.broadcast(tx, account.keypair)
            for account, tx in self._byzantine_staged
        ]
        self._byzantine_pending = list(self._byzantine_wave)
        self.state = SUBMITTING

    def _step_submitting(self) -> None:
        confirmed = self._service()
        if self._byzantine_pending:
            # Byzantine traffic is best-effort: its *rejection* is the
            # interesting outcome, so abandonment just drops it.
            try:
                self._byzantine_pending = self.engine.tx_sender.service(
                    self._byzantine_pending
                )
            except RECOVERABLE:
                self._byzantine_pending = []
        if not confirmed or self._byzantine_pending:
            return
        for (worker, _, prepared), pending in zip(self._submissions, self._wave):
            receipt = pending.receipt
            if not receipt.success:
                raise ProtocolError(
                    f"submission to task {self.index} failed: {receipt.error}"
                )
            worker.complete_submission(prepared, receipt)
        for pending in self._byzantine_wave:
            if pending.receipt is None:
                continue
            if pending.receipt.success:
                self.engine.byzantine_accepted += 1
            else:
                self.engine.byzantine_rejections += 1
        self._mark(SUBMITTING)
        self.state = COLLECTING

    def _step_collecting(self) -> None:
        if self.spec.requester_mode == REQUESTER_VANISH:
            raise ProtocolError(
                f"task {self.index}: requester vanished after publishing"
            )
        status = self._status()
        if not status["closed"]:
            return  # absent workers: wait for the answer deadline
        if status["answers"] == 0:
            # Algorithm 1's abort: nothing was submitted, so there is no
            # instruction to prove — settle through the contract's
            # timeout path for a full refund.
            self._mark(COLLECTING)
            self._settle_from_requester()
            return
        if self.spec.requester_mode == REQUESTER_STONEWALL:
            raise ProtocolError(
                f"task {self.index}: requester withheld the reward instruction"
            )
        self._mark(COLLECTING)
        self.reward_job = self.spec.requester.prepare_reward(self.handle)
        self.engine.enqueue_proof(self)
        self.state = PROVING

    def deliver_proof(self, proof) -> None:
        """Proving-pool callback: broadcast the proved instruction."""
        self._mark(PROVING)
        tx = self.spec.requester.reward_transaction(self.reward_job, proof)
        account = self.spec.requester.task_account(self.handle)
        self._broadcast([self.engine.tx_sender.broadcast(tx, account.keypair)])
        self.state = REWARDING

    def _step_rewarding(self) -> None:
        if not self._service():
            return
        receipt = self._wave[0].receipt
        if not receipt.success:
            raise ProtocolError(
                f"reward instruction for task {self.index} failed: {receipt.error}"
            )
        self._mark(REWARDING)
        self.outcome.rewards = self.handle.rewards()
        self.outcome.status = STATUS_COMPLETED
        if self.spec.audit:
            self.outcome.audit_passed = self.handle.audit_submissions()
        self.state = DONE

    # ----- settlement (Algorithm 1 lines 18-21) ---------------------------------------

    def _settle_from_requester(self) -> None:
        """Broadcast ``finalize_timeout`` from the task's own account."""
        tx = self.spec.requester.finalize_timeout_transaction(self.handle)
        account = self.spec.requester.task_account(self.handle)
        self._settling = True
        self._broadcast([self.engine.tx_sender.broadcast(tx, account.keypair)])
        self.state = SETTLING

    def _step_settling(self) -> None:
        if not self._service():
            return
        receipt = self._wave[0].receipt
        if not receipt.success and "already settled" not in (receipt.error or ""):
            raise ProtocolError(
                f"settlement for task {self.index} failed: {receipt.error}"
            )
        self._finish_from_chain()

    def _finish_from_chain(self) -> None:
        """Adopt the contract's terminal phase as this task's outcome."""
        phase = self.handle.phase()
        self.outcome.status = phase
        self.outcome.rewards = self.handle.rewards()
        self._settling = False
        self._mark("settled")
        if obs.TRACER.enabled:
            obs.count("engine.settlements")
        self.state = DONE

    def quarantine(self, reason: str) -> None:
        """Route this task to the timeout-refund path (breaker open)."""
        if self.state == DONE:
            return
        self.quarantine_reason = reason
        self.outcome.quarantined = True
        self._mark(QUARANTINED)
        self.engine.quarantines += 1
        if obs.TRACER.enabled:
            obs.count("engine.quarantines")
            with obs.span(
                "engine.quarantine", task=self.index, state=self.state
            ) as span:
                span.set_attrs(reason=reason)
        self.state = QUARANTINED

    def _step_quarantined(self) -> None:
        if self.handle is None:
            self._quarantined_without_contract()
            return
        if self._pending:
            try:
                if not self._service():
                    return
            except RECOVERABLE:
                self._pending = []
                self._settling = False
                self._wave = []
            if self._settling:
                receipt = self._wave[0].receipt if self._wave else None
                if receipt is not None and (
                    receipt.success
                    or "already settled" in (receipt.error or "")
                ):
                    self._finish_from_chain()
                    return
                # Reverted for a timing reason; re-evaluate below.
                self._settling = False
            self._wave = []
        status = self._status()
        if status["phase"] in SETTLED_PHASES:
            self._finish_from_chain()
            return
        if not status["closed"]:
            return  # collection still open — deadlines drive the refund
        if (
            status["answers"] > 0
            and self.engine.testnet.height <= status["instruction_deadline"]
        ):
            return  # the (absent) requester keeps its full window
        # "Anyone may settle": the engine's janitor account invokes the
        # even-split/abort refund on behalf of the stranded workers.
        janitor = self.engine.janitor_ready()
        if janitor is None:
            return  # janitor funding still confirming
        tx = Transaction(
            nonce=self.engine.tx_sender.nonces.reserve(janitor.address()),
            gas_price=DEFAULT_GAS_PRICE,
            gas_limit=DEFAULT_GAS_LIMIT,
            to=self.handle.address,
            value=0,
            data=encode_call("finalize_timeout", []),
        )
        self._settling = True
        self._broadcast([self.engine.tx_sender.broadcast(tx, janitor)])

    def _quarantined_without_contract(self) -> None:
        """Quarantined before the deploy confirmed: adopt or write off."""
        if self._contract_deployed():
            self.handle = self.spec.requester.adopt_task(
                self.prepared,
                nonce=self.engine.node.nonce_of(self.prepared.account.address),
            )
            self.outcome.address = self.handle.address
            return  # settle via the normal quarantine flow next round
        if self._pending:
            try:
                if not self._service():
                    return  # the deploy may still land
            except RECOVERABLE:
                pass
            self._pending = []
            if self._contract_deployed():
                return  # adopt on the next round
        self.outcome.status = STATUS_FAILED
        self.outcome.rewards = []
        self.state = DONE

    # ----- recovery -------------------------------------------------------------------

    def recover(self, exc: Exception) -> bool:
        """One reconciliation pass against the chain after a failure.

        The chain may already hold the outcome the failed step was
        driving toward (a transaction that landed under a receipt we
        lost, a contract another party settled).  Returns True when the
        runner made progress — which resets the circuit breaker.
        """
        if self.handle is not None:
            try:
                phase = self.handle.phase()
            except ChainError:
                phase = None
            if phase in SETTLED_PHASES:
                self._finish_from_chain()
                return True
        if self.state == PUBLISHING and self.handle is None:
            if self._contract_deployed():
                self.handle = self.spec.requester.adopt_task(
                    self.prepared,
                    nonce=self.engine.node.nonce_of(
                        self.prepared.account.address
                    ),
                )
                self._after_publish()
                return True
        from repro.chain.txsender import TxAbandonedError

        if isinstance(exc, TxAbandonedError) and self._wave:
            return self._rearm_pending()
        if (
            self.state == REWARDING
            and self.handle is not None
            and not self._reproved
        ):
            # The instruction transaction is unrecoverable: resync the
            # account nonce from the chain and re-derive the whole
            # reward job (decrypt → evaluate → prove) once.
            self._reproved = True
            self.spec.requester.resync_nonce(self.handle)
            self._wave = []
            self._pending = []
            self.reward_job = self.spec.requester.prepare_reward(self.handle)
            self.engine.enqueue_proof(self)
            self.state = PROVING
            return True
        return False

    def _rearm_pending(self) -> bool:
        """Give abandoned in-flight transactions a fresh retry lease.

        Re-gossips each unconfirmed transaction under its original
        nonce (same-slot, so at most one attempt can ever land) and
        resets the attempt budget — the recovery for waves starved by
        network faults rather than superseded on-chain.
        """
        rearmed = False
        for pending in self._wave:
            if self.engine.tx_sender.poll(pending) is not None:
                continue
            if pending.keypair is None:
                continue
            pending.attempts = 1
            pending.broadcast_height = self.engine.testnet.height
            stx = pending.transaction.sign(pending.keypair)
            if stx.tx_hash not in pending.tx_hashes:
                pending.tx_hashes.append(stx.tx_hash)
            try:
                self.engine.testnet.send_transaction(stx)
            except ChainError:
                continue
            rearmed = True
        self._pending = [p for p in self._wave if p.receipt is None]
        if rearmed and obs.TRACER.enabled:
            obs.count("engine.rearmed_waves")
        return rearmed

    # ----- checkpointing --------------------------------------------------------------

    def snapshot(self) -> TaskSnapshot:
        """This runner's complete client-side state, as plain data."""
        spec = self.spec
        account_nonce = 0
        if self.handle is not None:
            account_nonce = spec.requester.task_nonce(self.handle)
        # A PROVING runner's reward job is live backend state; snapshot
        # it as COLLECTING so the restart re-derives and re-proves.
        state = COLLECTING if self.state == PROVING else self.state
        return TaskSnapshot(
            index=self.index,
            state=state,
            requester_identity=spec.requester.identity,
            worker_identities=[w.identity for w in spec.workers],
            answers=[list(a) if a is not None else None for a in spec.answers],
            policy_descriptor=dict(spec.policy.describe()),
            description=spec.description,
            budget=spec.budget,
            answer_window=spec.answer_window,
            instruction_window=spec.instruction_window,
            rsa_bits=spec.rsa_bits,
            audit=spec.audit,
            requester_mode=spec.requester_mode,
            equivocators=list(spec.equivocators),
            task_index=self.task_index,
            address=self.handle.address if self.handle is not None else b"",
            account_nonce=account_nonce,
            phase_blocks=dict(self.outcome.phase_blocks),
            phase_times=dict(self.outcome.phase_times),
            rewards=list(self.outcome.rewards),
            status=self.outcome.status,
            quarantined=self.outcome.quarantined,
            quarantine_reason=self.quarantine_reason,
            wave=[PendingTxSnapshot.from_pending(p) for p in self._wave],
            byzantine_wave=[
                PendingTxSnapshot.from_pending(p) for p in self._byzantine_wave
            ],
            settling=self._settling,
        )

    def _restore(self, snap: TaskSnapshot) -> None:
        """Rebuild the runner from a snapshot against the live chain."""
        self.state = snap.state
        self._started = True
        self.quarantine_reason = snap.quarantine_reason
        self.outcome.address = snap.address
        self.outcome.rewards = list(snap.rewards)
        self.outcome.status = snap.status
        self.outcome.quarantined = snap.quarantined
        self.outcome.phase_blocks = dict(snap.phase_blocks)
        self.outcome.phase_times = dict(snap.phase_times)
        self._wave = [p.to_pending() for p in snap.wave]
        self._pending = list(self._wave)
        self._byzantine_wave = [p.to_pending() for p in snap.byzantine_wave]
        self._byzantine_pending = list(self._byzantine_wave)
        self._settling = snap.settling
        if snap.state == FUNDING and not snap.wave:
            self._started = False  # crashed before the first broadcast
        if not snap.address:
            return
        # The contract was deployed before the crash: re-adopt it under
        # the checkpointed account nonce (the chain stays the ground
        # truth — ``recover`` resyncs if a broadcast landed after the
        # snapshot was taken).
        self.handle = self.spec.requester.adopt_task(
            self.prepared, nonce=snap.account_nonce
        )
        if snap.state in (FUNDING_WORKERS, SUBMITTING):
            # Rebuild the submission bookkeeping deterministically; the
            # broadcast wave itself comes from the snapshot, so nonces
            # and ciphertexts match what the crashed run signed.
            self._submissions = []
            for worker, answer in zip(self.spec.workers, self.spec.answers):
                if answer is None:
                    continue
                prepared = worker.prepare_submission(
                    self.handle, answer, validate=False
                )
                self._submissions.append((worker, answer, prepared))
            self._stage_equivocations()


class ProtocolEngine:
    """Run many :class:`TaskSpec` instances against one shared chain."""

    def __init__(
        self,
        system: ZebraLancerSystem,
        specs: Sequence[TaskSpec],
        max_rounds: int = 512,
        *,
        retry_policy: Optional[RetryPolicy] = None,
        breaker_threshold: int = 3,
        checkpoint_store: Optional[CheckpointStore] = None,
        checkpoint_every: int = 0,
        crash_hook: Optional[Callable[["ProtocolEngine", int], None]] = None,
        pause_above: Optional[int] = None,
        resume_below: Optional[int] = None,
    ) -> None:
        if not specs:
            raise ProtocolError("nothing to run")
        self.system = system
        self.testnet = system.testnet
        self.tx_sender = system.testnet.tx_sender
        self.max_rounds = max_rounds
        self.specs = list(specs)
        self.retry_policy = retry_policy or RetryPolicy()
        self.breaker_threshold = breaker_threshold
        self.checkpoint_store = checkpoint_store
        self.checkpoint_every = checkpoint_every
        self.crash_hook = crash_hook
        if pause_above is not None and resume_below is None:
            resume_below = max(1, pause_above // 2)
        self.pause_above = pause_above
        self.resume_below = resume_below
        self._paused = False
        self.pauses = 0
        self.quarantines = 0
        self.byzantine_rejections = 0
        self.byzantine_accepted = 0
        self.round = 0
        self.runners: List[_TaskRunner] = []
        self.supervisors: List[TaskSupervisor] = []
        self._prove_queue: List[_TaskRunner] = []
        self._janitor: Optional[ecdsa.ECDSAKeyPair] = None
        self._janitor_funding: Optional[List[PendingTx]] = None
        self._restore_checkpoint: Optional[EngineCheckpoint] = None

    @property
    def node(self):
        """The freshest live node, re-picked per access.

        Chaos plans crash nodes mid-run; pinning one node at
        construction would turn every read after its crash window into
        a hard failure instead of a failover.
        """
        return self.system.node

    # ----- resilience services --------------------------------------------------------

    def admitting(self) -> bool:
        """The backpressure gate new broadcast waves consult.

        Hysteresis on the attached node's mempool depth: pause above
        ``pause_above``, resume below ``resume_below`` — so a saturated
        run oscillates gently instead of thrashing at one threshold.
        """
        if self.pause_above is None:
            return True
        depth = len(self.node.mempool)
        if self._paused:
            if depth > self.resume_below:
                return False
            self._paused = False
            return True
        if depth >= self.pause_above:
            self._paused = True
            self.pauses += 1
            if obs.TRACER.enabled:
                obs.count("engine.backpressure_pauses")
            return False
        return True

    def janitor_key(self) -> ecdsa.ECDSAKeyPair:
        """The engine's settlement identity ("anyone may settle")."""
        if self._janitor is None:
            self._janitor = ecdsa.ECDSAKeyPair.from_seed(
                sha256(b"engine-janitor", self.system.seed)
            )
        return self._janitor

    def janitor_ready(self) -> Optional[ecdsa.ECDSAKeyPair]:
        """The funded janitor keypair, or None while funding confirms.

        Admission control rejects transactions whose sender cannot
        cover max gas cost, so the janitor must hold funds *before* its
        ``finalize_timeout`` broadcast — funding is lazy (only chaos
        runs ever need a janitor) and shared by every quarantined task.
        """
        key = self.janitor_key()
        if self._janitor_funding is None:
            if self.node.balance_of(key.address()) > 0:
                return key
            # On a sharded chain the janitor is a replicated sender: it
            # may have to settle a task on any shard, so it is funded on
            # all of them and its transactions broadcast everywhere.
            fund_all = getattr(self.testnet, "fund_all_async", None)
            if fund_all is not None:
                self._janitor_funding = fund_all(key.address(), DEFAULT_GAS_ALLOWANCE)
            else:
                self._janitor_funding = [
                    self.testnet.fund_async(key.address(), DEFAULT_GAS_ALLOWANCE)
                ]
            return None
        try:
            remaining = self.tx_sender.service(self._janitor_funding)
        except RECOVERABLE:
            self._janitor_funding = None
            return None
        if remaining:
            return None
        self._janitor_funding = None
        return key

    def enqueue_proof(self, runner: _TaskRunner) -> None:
        self._prove_queue.append(runner)

    # ----- checkpointing --------------------------------------------------------------

    def checkpoint(self) -> EngineCheckpoint:
        """Snapshot all client-side state the chain does not hold."""
        tasks: List[TaskSnapshot] = []
        for runner, supervisor in zip(self.runners, self.supervisors):
            snap = runner.snapshot()
            snap.failures = supervisor.failures
            tasks.append(snap)
        head = self.node.head_block
        return EngineCheckpoint(
            round=self.round,
            head_height=self.testnet.height,
            head_hash=head.block_hash,
            nonce_reservations=self.tx_sender.nonces.snapshot(),
            janitor_key=self._janitor.private_key if self._janitor else 0,
            tasks=tasks,
            counters={
                "byzantine_rejections": self.byzantine_rejections,
                "byzantine_accepted": self.byzantine_accepted,
                "pauses": self.pauses,
            },
        )

    def checkpoint_bytes(self) -> bytes:
        return encode_checkpoint(self.checkpoint())

    @classmethod
    def resume(
        cls,
        system: ZebraLancerSystem,
        checkpoint,
        **kwargs: Any,
    ) -> "ProtocolEngine":
        """Rebuild an engine from a checkpoint against the live chain.

        ``checkpoint`` is an :class:`EngineCheckpoint` or its encoded
        bytes.  The snapshot is self-contained: specs, clients and
        policies are reconstructed from the recorded identities (keys
        re-derive deterministically; certificates come from the RA,
        which — like the chain — survives an engine crash).
        """
        if isinstance(checkpoint, (bytes, bytearray)):
            checkpoint = decode_checkpoint(checkpoint)
        if checkpoint.head_height > system.testnet.height:
            raise CheckpointError(
                "checkpoint is ahead of the chain: "
                f"height {checkpoint.head_height} > {system.testnet.height}"
            )
        specs: List[TaskSpec] = []
        for snap in checkpoint.tasks:
            requester = Requester(system, snap.requester_identity, register=False)
            workers = [
                Worker(system, identity, register=False)
                for identity in snap.worker_identities
            ]
            specs.append(
                TaskSpec(
                    requester=requester,
                    workers=workers,
                    answers=[
                        list(a) if a is not None else None for a in snap.answers
                    ],
                    policy=policy_from_descriptor(snap.policy_descriptor),
                    description=snap.description,
                    budget=snap.budget,
                    answer_window=snap.answer_window,
                    instruction_window=snap.instruction_window,
                    rsa_bits=snap.rsa_bits,
                    audit=snap.audit,
                    requester_mode=snap.requester_mode,
                    equivocators=list(snap.equivocators),
                )
            )
        engine = cls(system, specs, **kwargs)
        engine._restore_checkpoint = checkpoint
        engine.byzantine_rejections = checkpoint.counters.get(
            "byzantine_rejections", 0
        )
        engine.byzantine_accepted = checkpoint.counters.get(
            "byzantine_accepted", 0
        )
        engine.pauses = checkpoint.counters.get("pauses", 0)
        if checkpoint.janitor_key:
            engine._janitor = ecdsa.ECDSAKeyPair(checkpoint.janitor_key)
        engine.tx_sender.nonces.restore(checkpoint.nonce_reservations)
        if obs.TRACER.enabled:
            obs.count("engine.resumes")
        return engine

    # ----- the scheduler --------------------------------------------------------------

    def _pregenerate_encryption_keys(self) -> List[TaskKeyPair]:
        """Generate every task's RSA keypair across a fork pool.

        The seeds are exactly what each requester's ``prepare_publish``
        would derive on its own (accounting for requesters publishing
        several tasks), so the keys — and therefore the transcript —
        are identical to inline generation, just ~cores times faster.
        RSA keygen is the single largest client-side cost per task.
        """
        with obs.span("engine.keygen", tasks=len(self.specs)):
            restore = self._restore_checkpoint
            requests = []
            if restore is not None:
                for spec, snap in zip(self.specs, restore.tasks):
                    requests.append(
                        (
                            spec.requester.encryption_rng_seed(snap.task_index),
                            spec.rsa_bits,
                        )
                    )
            else:
                offsets: Dict[int, int] = {}
                for spec in self.specs:
                    requester = spec.requester
                    offset = offsets.get(id(requester), 0)
                    offsets[id(requester)] = offset + 1
                    requests.append(
                        (
                            requester.encryption_rng_seed(
                                requester.task_counter + offset
                            ),
                            spec.rsa_bits,
                        )
                    )
            return fanout_map(
                _KeygenJob(), requests, os.cpu_count() or 1, chunked=False
            )

    def run(self) -> EngineReport:
        import time

        with obs.span("engine.run", tasks=len(self.specs)) as run_span:
            wall_start = time.perf_counter()
            report = self._run()
            report.wall_seconds = time.perf_counter() - wall_start
            run_span.set_attrs(
                blocks=report.blocks_mined, rounds=report.rounds
            )
        if obs.TRACER.enabled:
            obs.count("engine.runs")
            obs.count("engine.tasks", len(self.specs))
            obs.count("engine.blocks", report.blocks_mined)
        return report

    def _run(self) -> EngineReport:
        start_height = self.testnet.height
        sim_start = self.testnet.clock.now
        restore = self._restore_checkpoint
        encryption_keys = self._pregenerate_encryption_keys()
        self.runners = [
            _TaskRunner(
                spec,
                index,
                self,
                encryption_keys=encryption_keys[index],
                snapshot=restore.tasks[index] if restore is not None else None,
            )
            for index, spec in enumerate(self.specs)
        ]
        self.supervisors = [
            TaskSupervisor(
                runner,
                policy=self.retry_policy,
                breaker_threshold=self.breaker_threshold,
            )
            for runner in self.runners
        ]
        if restore is not None:
            for supervisor, snap in zip(self.supervisors, restore.tasks):
                supervisor.restore_failures(snap.failures)
        rounds = 0
        blocks = 0
        while True:
            if self.crash_hook is not None:
                self.crash_hook(self, rounds)
            with obs.span("engine.round", round=rounds):
                for supervisor in self.supervisors:
                    supervisor.step(rounds)
                self._drain_proving()
            if (
                self.checkpoint_store is not None
                and self.checkpoint_every
                and rounds % self.checkpoint_every == 0
            ):
                self.checkpoint_store.save(self.checkpoint_bytes())
                if obs.TRACER.enabled:
                    obs.count("engine.checkpoints")
            if all(runner.done for runner in self.runners):
                break
            if rounds >= self.max_rounds:
                stuck = [r.index for r in self.runners if not r.done]
                raise EngineStallError(
                    f"tasks {stuck} still in flight after {rounds} rounds"
                )
            self.testnet.mine_block()
            blocks += 1
            rounds += 1
            self.round = rounds

        end_height = self.testnet.height
        block_lines, transactions = _chain_segment(
            self.node, start_height, end_height
        )
        return EngineReport(
            outcomes=[runner.outcome for runner in self.runners],
            rounds=rounds,
            blocks_mined=blocks,
            start_height=start_height,
            end_height=end_height,
            transactions=transactions,
            wall_seconds=0.0,
            sim_seconds=self.testnet.clock.now - sim_start,
            blocks=block_lines,
            resilience={
                "retries": sum(s.retries for s in self.supervisors),
                "recoveries": sum(s.recoveries for s in self.supervisors),
                "quarantined": sum(
                    1 for r in self.runners if r.outcome.quarantined
                ),
                "pauses": self.pauses,
                "byzantine_rejections": self.byzantine_rejections,
                "byzantine_accepted": self.byzantine_accepted,
                "checkpoints": (
                    self.checkpoint_store.saves if self.checkpoint_store else 0
                ),
            },
        )

    def _drain_proving(self) -> None:
        """Prove every job staged this round as ONE backend batch."""
        if not self._prove_queue:
            return
        queue, self._prove_queue = self._prove_queue, []
        requests = [
            (r.reward_job.proving_key, r.reward_job.circuit, r.reward_job.instance)
            for r in queue
        ]
        proofs = self.system.backend.prove_many(requests)
        for runner, proof in zip(queue, proofs):
            runner.deliver_proof(proof)


def _chain_segment(
    node, start_height: int, end_height: int
) -> Tuple[List[Tuple[int, str, Tuple[str, ...]]], int]:
    """(number, hash, tx hashes) per canonical block in (start, end]."""
    lines: List[Tuple[int, str, Tuple[str, ...]]] = []
    transactions = 0
    for block in node.canonical_blocks(start_height + 1, end_height):
        tx_hashes = tuple(stx.tx_hash.hex() for stx in block.transactions)
        transactions += len(tx_hashes)
        lines.append((block.number, block.block_hash.hex(), tx_hashes))
    return lines, transactions


# ----- spec construction and the serial baseline --------------------------------------


def engine_system(
    num_tasks: int,
    workers_per_task: int,
    backend_name: str = "mock",
    seed: bytes = b"engine-system",
    execution_lanes: int = 1,
    execution_workers: int = 1,
    fault_plan=None,
    mempool_capacity: Optional[int] = None,
    shards: Optional[int] = None,
    **system_kwargs: Any,
) -> ZebraLancerSystem:
    """A :class:`ZebraLancerSystem` sized for a concurrent wave.

    Block selection budgets by each transaction's gas *limit*, so the
    block gas limit must admit a whole wave of client transactions
    (deployments, submissions, reward instructions all reserve
    ``DEFAULT_GAS_LIMIT``) for batching to happen at all.

    ``fault_plan`` wires a seeded :class:`~repro.chain.faults.FaultPlan`
    into the testnet (chaos runs); ``mempool_capacity`` bounds each
    node's pool, which is what the engine's backpressure gate pushes
    against.  ``shards`` puts the whole system on a
    :class:`~repro.chain.sharding.ShardedChain`: each Algorithm-1 task
    runs on the home shard of its task contract, with rewards settled
    cross-shard through the receipt-proven bridge (``shards=1`` is
    byte-identical to the plain testnet).
    """
    import repro.contracts  # noqa: F401  (side effect: registers contract classes)
    from dataclasses import replace

    from repro.chain.network import Testnet
    from repro.core.protocol import DEFAULT_GAS_LIMIT
    from repro.profiles import TEST

    wave = max(1, num_tasks * (workers_per_task + 2))
    chain_kwargs: Dict[str, Any] = dict(
        gas_limit=max(30_000_000, wave * DEFAULT_GAS_LIMIT),
        execution_lanes=execution_lanes,
        execution_workers=execution_workers,
        fault_plan=fault_plan,
        mempool_capacity=mempool_capacity,
    )
    if shards is None:
        testnet = Testnet(**chain_kwargs)
    else:
        from repro.chain.sharding import ShardedChain

        testnet = ShardedChain(shards=shards, **chain_kwargs)
    # The registration tree must hold the whole cohort (N requesters +
    # N·M workers) with headroom for extra registrations by the tests.
    cohort = num_tasks * (workers_per_task + 1)
    depth = TEST.merkle_depth
    while (1 << depth) < 2 * cohort:
        depth += 1
    profile = replace(TEST, name=f"test-d{depth}", merkle_depth=depth)
    return ZebraLancerSystem(
        profile=profile,
        backend_name=backend_name,
        seed=seed,
        testnet=testnet,
        **system_kwargs,
    )


def _register_cohort(
    system: ZebraLancerSystem,
    requesters: List[Requester],
    workers: List[List[Worker]],
) -> None:
    entries = [(r.identity, r.keys.public_key) for r in requesters]
    for cohort in workers:
        entries.extend((w.identity, w.keys.public_key) for w in cohort)
    certificates = system.register_participants(entries)
    for client, certificate in zip(
        requesters + [w for cohort in workers for w in cohort], certificates
    ):
        client.certificate = certificate


def make_uniform_specs(
    system: ZebraLancerSystem,
    num_tasks: int,
    workers_per_task: int,
    num_choices: int = 4,
    budget: int = 1_200,
    seed: int = 0,
    accuracy: float = 0.8,
    absent_probability: float = 0.0,
    rsa_bits: int = 1024,
    audit: bool = False,
) -> List[TaskSpec]:
    """Build N homogeneous majority-vote tasks with sampled answers.

    Answers are drawn with :mod:`repro.core.simulation` semantics (a
    uniform ground truth per task; each worker reports it with
    ``accuracy``, is absent with ``absent_probability``), from a
    ``random.Random(seed)`` — the same seed always yields the same
    specs, which is what the determinism tests replay.  All
    ``N·(M+1)`` identities register under one commitment update.
    """
    import random

    rng = random.Random(seed)
    requesters = [
        Requester(system, f"requester-{i}", register=False) for i in range(num_tasks)
    ]
    workers = [
        [
            Worker(system, f"worker-{i}-{j}", register=False)
            for j in range(workers_per_task)
        ]
        for i in range(num_tasks)
    ]
    _register_cohort(system, requesters, workers)

    from repro.core.simulation import sample_answer

    specs: List[TaskSpec] = []
    for i in range(num_tasks):
        truth = rng.randrange(num_choices)
        answers: List[Optional[Sequence[int]]] = [
            sample_answer(rng, truth, num_choices, accuracy, absent_probability)
            for _ in range(workers_per_task)
        ]
        if not any(answer is not None for answer in answers):
            answers[0] = [truth]  # keep the task rewardable
        specs.append(
            TaskSpec(
                requester=requesters[i],
                workers=workers[i],
                answers=answers,
                policy=MajorityVotePolicy(num_choices=num_choices),
                description=f"engine-task-{i}",
                budget=budget,
                rsa_bits=rsa_bits,
                audit=audit,
            )
        )
    return specs


def make_chaos_specs(
    system: ZebraLancerSystem,
    num_tasks: int,
    workers_per_task: int,
    num_choices: int = 4,
    budget: int = 1_200,
    seed: int = 0,
    accuracy: float = 0.8,
    stonewall: Sequence[int] = (),
    vanish: Sequence[int] = (),
    equivocate: Sequence[int] = (),
    empty: Sequence[int] = (),
    answer_window: int = 32,
    instruction_window: int = 8,
    rsa_bits: int = 1024,
) -> List[TaskSpec]:
    """Specs with byzantine actors mixed in, for engine-scale chaos.

    ``stonewall``/``vanish`` name task indices whose requester goes
    byzantine; ``equivocate`` names tasks whose first present worker
    also submits a conflicting sybil answer; ``empty`` names tasks in
    which every worker is absent (the zero-answer abort path).  The
    instruction window defaults short so quarantined tasks reach the
    even-split refund within a reasonable round budget.
    """
    import random

    rng = random.Random(seed)
    requesters = [
        Requester(system, f"chaos-requester-{i}", register=False)
        for i in range(num_tasks)
    ]
    workers = [
        [
            Worker(system, f"chaos-worker-{i}-{j}", register=False)
            for j in range(workers_per_task)
        ]
        for i in range(num_tasks)
    ]
    _register_cohort(system, requesters, workers)

    from repro.core.simulation import sample_answer

    specs: List[TaskSpec] = []
    for i in range(num_tasks):
        truth = rng.randrange(num_choices)
        if i in empty:
            answers: List[Optional[Sequence[int]]] = [None] * workers_per_task
        else:
            answers = [
                sample_answer(rng, truth, num_choices, accuracy, 0.0)
                for _ in range(workers_per_task)
            ]
            if not any(answer is not None for answer in answers):
                answers[0] = [truth]
        mode = REQUESTER_HONEST
        if i in stonewall:
            mode = REQUESTER_STONEWALL
        elif i in vanish:
            mode = REQUESTER_VANISH
        equivocators: List[int] = []
        if i in equivocate and i not in empty:
            equivocators = [
                next(j for j, a in enumerate(answers) if a is not None)
            ]
        specs.append(
            TaskSpec(
                requester=requesters[i],
                workers=workers[i],
                answers=answers,
                policy=MajorityVotePolicy(num_choices=num_choices),
                description=f"chaos-task-{i}",
                budget=budget,
                answer_window=answer_window,
                instruction_window=instruction_window,
                rsa_bits=rsa_bits,
                requester_mode=mode,
                equivocators=equivocators,
            )
        )
    return specs


def run_serial(system: ZebraLancerSystem, specs: Sequence[TaskSpec]) -> EngineReport:
    """The one-task-at-a-time baseline over the same specs.

    Drives each spec through the synchronous client APIs (mining
    blocks per transaction, proving per task) — what the throughput
    bench compares the engine against.
    """
    import time

    start_height = system.testnet.height
    sim_start = system.testnet.clock.now
    wall_start = time.perf_counter()
    outcomes: List[TaskOutcome] = []
    for index, spec in enumerate(specs):
        handle = spec.requester.publish_task(
            spec.policy,
            spec.description,
            num_answers=len(spec.workers),
            budget=spec.budget,
            answer_window=spec.answer_window,
            instruction_window=spec.instruction_window,
            rsa_bits=spec.rsa_bits,
        )
        outcome = TaskOutcome(
            index=index, requester=spec.requester.identity, address=handle.address
        )
        outcome.phase_blocks[PUBLISHING] = system.testnet.height
        for worker, answer in zip(spec.workers, spec.answers):
            if answer is not None:
                worker.submit_answer(handle, answer)
        system.testnet.mine_until(handle.is_collection_closed)
        outcome.phase_blocks[COLLECTING] = system.testnet.height
        receipt = spec.requester.evaluate_and_reward(handle)
        if not receipt.success:
            raise ProtocolError(f"reward for task {index} failed: {receipt.error}")
        outcome.phase_blocks[REWARDING] = system.testnet.height
        outcome.rewards = handle.rewards()
        outcome.status = STATUS_COMPLETED
        if spec.audit:
            outcome.audit_passed = handle.audit_submissions()
        outcomes.append(outcome)
    end_height = system.testnet.height
    block_lines, transactions = _chain_segment(system.node, start_height, end_height)
    return EngineReport(
        outcomes=outcomes,
        rounds=0,
        blocks_mined=end_height - start_height,
        start_height=start_height,
        end_height=end_height,
        transactions=transactions,
        wall_seconds=time.perf_counter() - wall_start,
        sim_seconds=system.testnet.clock.now - sim_start,
        blocks=block_lines,
    )


# ----- open marketplace layer --------------------------------------------------------


@dataclass
class MarketSpec:
    """One listing's full open-market lifecycle, declaratively.

    ``bidders`` pairs each candidate worker with its stake; ``answers``
    maps worker identity → the answer it will submit IF matched (None
    models an absent winner, who then forfeits its bond).  The same
    worker objects may appear across many specs — that is the point:
    their board handle accrues reputation listing over listing.
    """

    requester: Requester
    bidders: List[Tuple[Worker, int]]
    answers: Dict[str, Optional[Sequence[int]]]
    policy: RewardPolicy
    description: str = "listing"
    num_workers: int = 3
    budget: int = 1_200
    quality_bonus: int = 600
    validator_reward: int = 120
    answer_window: int = 32
    instruction_window: int = 32
    rsa_bits: int = 1024
    #: Whether the requester contests the outcome (routing settlement
    #: through the court instead of the timeout settle path).
    dispute: bool = False


@dataclass
class ListingOutcome:
    """One listing's terminal market state, chain-derived."""

    listing_id: int
    state: str
    task_address: bytes
    matched_tags: List[int]
    claims: Dict[int, int]
    disputed: bool
    payouts: List[List[Any]]
    disbursed: int
    escrow: int


@dataclass
class MarketReport:
    """Everything one open-market wave produced.

    ``task_specs``/``engine.outcomes`` feed the existing exactly-once
    payout check; ``listings`` feeds the market-side escrow
    conservation check (:func:`repro.core.accounting
    .assert_market_conservation`).
    """

    board_address: bytes
    arbiter_address: bytes
    auditor_address: bytes
    listing_ids: List[int]
    listings: List[ListingOutcome]
    engine: EngineReport
    task_specs: List[TaskSpec]

    @property
    def outcomes(self) -> List[TaskOutcome]:
        return self.engine.outcomes


def make_market_specs(
    system: ZebraLancerSystem,
    num_listings: int,
    pool_size: int,
    slots_per_listing: int = 3,
    num_choices: int = 4,
    seed: int = 0,
    budget: int = 1_200,
    quality_bonus: int = 600,
    validator_reward: int = 120,
    accuracy: float = 0.9,
    base_stake: int = 100,
    dispute_listings: Sequence[int] = (),
) -> List[MarketSpec]:
    """N listings bidding over ONE shared certified worker pool.

    Every pool worker bids on every listing (stakes jittered by the
    seeded rng so rankings are not degenerate), so the same handles
    compete repeatedly — the reputation-accrual shape the linkability
    property tests sweep.  ``dispute_listings`` name listings whose
    workers all answer out of range (zero policy rewards) and whose
    requester then takes the court path.
    """
    import random as _random

    rng = _random.Random(seed)
    requesters = [
        Requester(system, f"market-requester-{i}", register=False)
        for i in range(num_listings)
    ]
    pool = [
        Worker(system, f"market-worker-{j}", register=False)
        for j in range(pool_size)
    ]
    _register_cohort(system, requesters, [pool])

    from repro.core.simulation import sample_answer

    specs: List[MarketSpec] = []
    for i in range(num_listings):
        truth = rng.randrange(num_choices)
        bidders = [
            (worker, base_stake + rng.randrange(base_stake)) for worker in pool
        ]
        answers: Dict[str, Optional[Sequence[int]]] = {}
        for worker in pool:
            if i in dispute_listings:
                # Junk work: out-of-range answers earn zero policy
                # reward, so the dispute is upheld.
                answers[worker.identity] = [num_choices]
            else:
                answer = sample_answer(rng, truth, num_choices, accuracy, 0.0)
                answers[worker.identity] = answer
        if i not in dispute_listings and all(
            answers[w.identity] is None for w in pool
        ):
            answers[pool[0].identity] = [truth]
        specs.append(
            MarketSpec(
                requester=requesters[i],
                bidders=bidders,
                answers=answers,
                policy=MajorityVotePolicy(num_choices=num_choices),
                description=f"market-listing-{i}",
                num_workers=min(slots_per_listing, pool_size),
                budget=budget,
                quality_bonus=quality_bonus,
                validator_reward=validator_reward,
                dispute=i in dispute_listings,
            )
        )
    return specs


def run_open_market(
    system: ZebraLancerSystem,
    specs: Sequence[MarketSpec],
    board_address: Optional[bytes] = None,
    arbiter: Optional[Any] = None,
    max_rounds: int = 512,
    auditor_seed: bytes = b"market-auditor",
) -> MarketReport:
    """Drive N listings through the complete open lifecycle.

    Phase A (serial): post each listing, let its bidders stake, mine
    past the bid deadline, and match.  Phase B: run every matched
    cohort's Algorithm-1 task concurrently under the existing
    :class:`ProtocolEngine`.  Phase C (serial): attach each task to its
    listing, let winners claim their submissions by tag-link proof,
    anchor the validator audit, mine out the claim window, and settle —
    through the court for disputed listings.

    When no board is supplied one is deployed with windows sized to
    this wave (its attach window must outlast the engine run).
    """
    from repro.core.anonymity import derive_one_task_account
    from repro.core.market import Arbiter, board_config, deploy_marketplace

    specs = list(specs)
    if not specs:
        raise ProtocolError("nothing to run on the market")
    node = system.node
    testnet = system.testnet
    if arbiter is None:
        arbiter = Arbiter(system)
    if board_address is None:
        # Each bid costs ~3 blocks serially (two funding txs + the bid).
        bid_window = 8 + 4 * max(len(spec.bidders) for spec in specs)
        board_address = deploy_marketplace(
            system,
            arbiter.address,
            board_config(attach_window=max_rounds + 256, bid_window=bid_window),
        )

    with obs.span("market.run", listings=len(specs)):
        report = _run_open_market(
            system, specs, board_address, arbiter, max_rounds, auditor_seed
        )
    obs.count("market.waves")
    return report


def _run_open_market(
    system: ZebraLancerSystem,
    specs: List[MarketSpec],
    board_address: bytes,
    arbiter: Any,
    max_rounds: int,
    auditor_seed: bytes,
) -> MarketReport:
    from repro.core.anonymity import derive_one_task_account

    node = system.node
    testnet = system.testnet

    # ----- Phase A: post, discover, bid, match ------------------------------
    listing_ids: List[int] = []
    for spec in specs:
        listing_id = spec.requester.post_listing(
            board_address,
            spec.description,
            spec.num_workers,
            spec.budget,
            spec.quality_bonus,
            spec.validator_reward,
        )
        listing_ids.append(listing_id)
        if spec.bidders:
            # Workers genuinely *discover* the listing on the board
            # rather than being handed it out of band.
            browsed = spec.bidders[0][0].discover_listings(board_address)
            if listing_id not in {entry["id"] for entry in browsed}:
                raise ProtocolError(
                    f"listing {listing_id} not discoverable while bidding"
                )
        for worker, stake in spec.bidders:
            receipt = worker.place_bid(board_address, listing_id, stake)
            if not receipt.success:
                raise ProtocolError(
                    f"bid on listing {listing_id} failed: {receipt.error}"
                )

    last_deadline = max(
        node.call(board_address, "get_listing", [listing_id])["bid_deadline"]
        for listing_id in listing_ids
    )
    if testnet.height <= last_deadline:
        testnet.mine_blocks(last_deadline - testnet.height + 1)

    matched_workers: List[List[Worker]] = []
    for spec, listing_id in zip(specs, listing_ids):
        spec.requester.match_listing(board_address, listing_id)
        listing = node.call(board_address, "get_listing", [listing_id])
        by_tag = {
            worker.handle_tag(board_address): worker
            for worker, _ in spec.bidders
        }
        matched_workers.append(
            [by_tag[listing["bids"][i]["tag"]] for i in listing["matched"]]
        )

    # ----- Phase B: Algorithm 1 for every matched cohort --------------------
    task_specs = [
        TaskSpec(
            requester=spec.requester,
            workers=winners,
            answers=[spec.answers.get(worker.identity) for worker in winners],
            policy=spec.policy,
            description=f"market:{spec.description}",
            budget=spec.budget,
            answer_window=spec.answer_window,
            instruction_window=spec.instruction_window,
            rsa_bits=spec.rsa_bits,
            colocate=board_address,
        )
        for spec, winners in zip(specs, matched_workers)
    ]
    engine_report = ProtocolEngine(system, task_specs, max_rounds=max_rounds).run()

    # ----- Phase C: attach, claim, validate, settle -------------------------
    auditor = derive_one_task_account(
        auditor_seed, f"auditor:{board_address.hex()}"
    )
    outcome_by_index = {outcome.index: outcome for outcome in engine_report.outcomes}
    for index, (spec, listing_id, winners) in enumerate(
        zip(specs, listing_ids, matched_workers)
    ):
        outcome = outcome_by_index[index]
        spec.requester.attach_listing_task(
            board_address, listing_id, outcome.address
        )
        for worker in winners:
            if spec.answers.get(worker.identity) is None:
                continue  # never submitted; nothing to claim
            receipt = worker.report_work(
                board_address, listing_id, outcome.address
            )
            if not receipt.success:
                raise ProtocolError(
                    f"claim on listing {listing_id} failed: {receipt.error}"
                )
        system.fund_anonymous(auditor.address, near=board_address)
        validate_tx = Transaction(
            nonce=node.nonce_of(auditor.address),
            gas_price=DEFAULT_GAS_PRICE,
            gas_limit=DEFAULT_GAS_LIMIT,
            to=board_address,
            value=0,
            data=encode_call("validate_task", [listing_id]),
        )
        receipt = system.send_reliable(validate_tx, auditor.keypair)
        if not receipt.success:
            raise ProtocolError(
                f"validation of listing {listing_id} failed: {receipt.error}"
            )

    claim_window = node.call(board_address, "get_config")["claim_window"]
    deadlines = [
        node.call(outcome_by_index[i].address, "get_status")["instruction_deadline"]
        for i in range(len(specs))
    ]
    last_deadline = max(d for d in deadlines if d is not None) + claim_window
    if testnet.height <= last_deadline:
        testnet.mine_blocks(last_deadline - testnet.height + 1)

    listings: List[ListingOutcome] = []
    for spec, listing_id in zip(specs, listing_ids):
        if spec.dispute:
            receipt = spec.requester.open_dispute(board_address, listing_id)
            if not receipt.success:
                raise ProtocolError(
                    f"dispute on listing {listing_id} failed: {receipt.error}"
                )
            arbiter.rule(board_address, listing_id)
        else:
            receipt = spec.requester.settle_listing(board_address, listing_id)
            if not receipt.success:
                raise ProtocolError(
                    f"settlement of listing {listing_id} failed: {receipt.error}"
                )
        listing = node.call(board_address, "get_listing", [listing_id])
        listings.append(
            ListingOutcome(
                listing_id=listing_id,
                state=listing["state"],
                task_address=listing["task"],
                matched_tags=[
                    listing["bids"][i]["tag"] for i in listing["matched"]
                ],
                claims=dict(listing["claims"]),
                disputed=listing["dispute"] is not None,
                payouts=listing["payouts"],
                disbursed=listing["disbursed"],
                escrow=listing["escrow"],
            )
        )

    return MarketReport(
        board_address=board_address,
        arbiter_address=arbiter.address,
        auditor_address=auditor.address,
        listing_ids=listing_ids,
        listings=listings,
        engine=engine_report,
        task_specs=task_specs,
    )
