"""Measurement utilities shared by the benchmark harness.

Provides wall-clock timing, box-plot statistics (for Fig. 4), byte-size
accounting (for Table I's operand columns), and peak-memory tracking
(for the paper's constant-17MB observation).
"""

from __future__ import annotations

import math
import time
import tracemalloc
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator, List, Sequence


@dataclass
class Timer:
    """Mutable elapsed-seconds holder filled by :func:`measure`."""

    seconds: float = 0.0

    @property
    def millis(self) -> float:
        return self.seconds * 1000.0


@contextmanager
def measure() -> Iterator[Timer]:
    """Context manager measuring wall-clock time."""
    timer = Timer()
    started = time.perf_counter()
    try:
        yield timer
    finally:
        timer.seconds = time.perf_counter() - started


def time_call(fn: Callable, repeats: int = 1) -> List[float]:
    """Run ``fn`` ``repeats`` times, returning per-run seconds."""
    samples = []
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - started)
    return samples


@dataclass(frozen=True)
class BoxStats:
    """Five-number summary (what Fig. 4's box plot shows)."""

    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    mean: float
    count: int

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "BoxStats":
        if not samples:
            raise ValueError("need at least one sample")
        ordered = sorted(samples)
        # fsum keeps the sum exact; the final division can still land
        # one ulp outside [min, max] (e.g. three identical samples), so
        # clamp — the five-number ordering is a documented invariant.
        mean = min(max(math.fsum(ordered) / len(ordered), ordered[0]), ordered[-1])
        return cls(
            minimum=ordered[0],
            q1=_quantile(ordered, 0.25),
            median=_quantile(ordered, 0.5),
            q3=_quantile(ordered, 0.75),
            maximum=ordered[-1],
            mean=mean,
            count=len(ordered),
        )

    def render(self, unit: str = "s", scale: float = 1.0) -> str:
        return (
            f"min {self.minimum * scale:.3f}{unit}  "
            f"q1 {self.q1 * scale:.3f}{unit}  "
            f"median {self.median * scale:.3f}{unit}  "
            f"q3 {self.q3 * scale:.3f}{unit}  "
            f"max {self.maximum * scale:.3f}{unit}  "
            f"(mean {self.mean * scale:.3f}{unit}, n={self.count})"
        )


def _quantile(ordered: Sequence[float], q: float) -> float:
    """Linear-interpolated quantile of pre-sorted samples.

    The interpolated value is clamped into its bracketing samples so
    rounding can never push a quantile outside ``[min, max]`` or out of
    order with its neighbours.
    """
    if len(ordered) == 1:
        return ordered[0]
    position = q * (len(ordered) - 1)
    lower = int(position)
    upper = min(lower + 1, len(ordered) - 1)
    fraction = position - lower
    interpolated = ordered[lower] * (1 - fraction) + ordered[upper] * fraction
    return min(max(interpolated, ordered[lower]), ordered[upper])


@contextmanager
def peak_memory() -> Iterator[dict]:
    """Track peak allocated bytes across a block (tracemalloc)."""
    holder = {"peak_bytes": 0}
    tracemalloc.start()
    try:
        yield holder
    finally:
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        holder["peak_bytes"] = peak


def humanize_bytes(count: int) -> str:
    """1536 → '1.5KB' (Table I renders operand sizes this way)."""
    value = float(count)
    for unit in ("B", "KB", "MB", "GB"):
        if value < 1024 or unit == "GB":
            if unit == "B":
                return f"{int(value)}{unit}"
            return f"{value:.1f}{unit}"
        value /= 1024
    raise AssertionError("unreachable")
