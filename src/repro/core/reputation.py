"""Pseudonymous reputation over common-prefix-linkable tags.

ZebraLancer's tags t1 = PRF_sk(prefix) are deterministic per (key,
prefix): with the marketplace board's address as the common prefix,
every certified worker owns exactly ONE stable tag on that board — a
pseudonymous handle that accrues reputation across listings — while
its per-task tags (task-address prefixes) remain pairwise unlinkable.
Reputation therefore attaches to the handle tag, never to a chain
address or a certificate, and deanonymizes nothing beyond what the
tags already reveal (see DESIGN.md §12).

The scoring functions are pure integer arithmetic over plain lists so
the marketplace contract can evaluate them on-chain (deterministically,
gas-metered) and clients can predict match outcomes off-chain from the
same code.  A record is ``[score, completed, defaulted, disputes_lost,
last_block]``.

Sybil resistance falls out of the fixed-point multiplier: a fresh
handle scores :data:`REP_SCALE` exactly (multiplier 1.0), so splitting
stake across k fresh credentials yields k bids each strictly weaker
than the single combined bid — reputation farming via re-registration
buys nothing (asserted by the ReputationFarmer attack suite).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.serialization import framed_decode, framed_encode

#: Fixed-point scale for the reputation multiplier (1000 = 1.0x).
REP_SCALE = 1_000
#: Score delta for a claimed slot the policy actually rewarded.
GAIN_COMPLETED = 100
#: Score penalty for a matched slot that earned nothing (junk or no-show).
LOSS_DEFAULTED = 150
#: Additional penalty when a dispute against the work is upheld.
LOSS_DISPUTE = 250
#: Score ceiling, bounding the multiplier at (REP_SCALE + MAX_SCORE)/REP_SCALE.
MAX_SCORE = 5_000

#: Record layout indices (plain list, contract-storage friendly).
SCORE, COMPLETED, DEFAULTED, DISPUTES_LOST, LAST_BLOCK = range(5)

OUTCOME_COMPLETED = "completed"
OUTCOME_DEFAULTED = "defaulted"
OUTCOME_DISPUTE_LOST = "dispute-lost"

_MAGIC_RECORD = b"ZLRP"
_MAGIC_REGISTRY = b"ZLRR"
_WIRE_VERSION = 1


def fresh_record(block: int = 0) -> List[int]:
    """The record every unseen handle implicitly holds."""
    return [0, 0, 0, 0, block]


def decayed_score(score: int, last_block: int, now_block: int, half_life: int) -> int:
    """``score`` halved once per ``half_life`` blocks of inactivity.

    Pure integer halving keeps the on-chain and client evaluations
    bit-identical; a dormant veteran converges to a fresh handle
    instead of hoarding an eternal advantage.
    """
    if half_life <= 0:
        return score
    age = max(0, now_block - last_block)
    halvings = age // half_life
    if halvings >= score.bit_length():
        return 0
    return score >> halvings


def bid_score(stake: int, score: int) -> int:
    """``stake × reputation`` in :data:`REP_SCALE` fixed point.

    A fresh handle (score 0) ranks purely by stake; an established one
    multiplies its stake by up to (REP_SCALE + MAX_SCORE)/REP_SCALE.
    """
    return stake * (REP_SCALE + min(score, MAX_SCORE)) // REP_SCALE


def apply_outcome(
    record: Optional[List[int]], outcome: str, block: int, half_life: int
) -> List[int]:
    """Fold one listing outcome into a record (returns a NEW list)."""
    if record is None:
        record = fresh_record(block)
    score = decayed_score(record[SCORE], record[LAST_BLOCK], block, half_life)
    completed = record[COMPLETED]
    defaulted = record[DEFAULTED]
    disputes_lost = record[DISPUTES_LOST]
    if outcome == OUTCOME_COMPLETED:
        score = min(score + GAIN_COMPLETED, MAX_SCORE)
        completed += 1
    elif outcome == OUTCOME_DEFAULTED:
        score = max(score - LOSS_DEFAULTED, 0)
        defaulted += 1
    elif outcome == OUTCOME_DISPUTE_LOST:
        score = max(score - LOSS_DISPUTE, 0)
        disputes_lost += 1
    else:
        raise ValueError(f"unknown reputation outcome {outcome!r}")
    return [score, completed, defaulted, disputes_lost, block]


@dataclass(frozen=True)
class ReputationRecord:
    """One handle's reputation, in transportable form."""

    tag: int
    score: int
    completed: int
    defaulted: int
    disputes_lost: int
    last_block: int

    @classmethod
    def from_storage(cls, tag: int, record: List[int]) -> "ReputationRecord":
        return cls(
            tag=tag,
            score=record[SCORE],
            completed=record[COMPLETED],
            defaulted=record[DEFAULTED],
            disputes_lost=record[DISPUTES_LOST],
            last_block=record[LAST_BLOCK],
        )

    def to_storage(self) -> List[int]:
        return [
            self.score,
            self.completed,
            self.defaulted,
            self.disputes_lost,
            self.last_block,
        ]

    def to_wire(self) -> bytes:
        return framed_encode(
            _MAGIC_RECORD, _WIRE_VERSION, [self.tag] + self.to_storage()
        )

    @classmethod
    def from_wire(cls, data: bytes) -> "ReputationRecord":
        fields = framed_decode(_MAGIC_RECORD, _WIRE_VERSION, data)
        if not isinstance(fields, list) or len(fields) != 6:
            raise ValueError("reputation record must hold exactly six fields")
        for value in fields:
            if not isinstance(value, int) or value < 0:
                raise ValueError("reputation record fields must be non-negative ints")
        tag, score, completed, defaulted, disputes_lost, last_block = fields
        if score > MAX_SCORE:
            raise ValueError("reputation score exceeds the ceiling")
        return cls(
            tag=tag,
            score=score,
            completed=completed,
            defaulted=defaulted,
            disputes_lost=disputes_lost,
            last_block=last_block,
        )


class ReputationRegistry:
    """A tag-keyed mirror of the board's reputation state.

    Clients rebuild it from the marketplace contract's view
    (:meth:`from_board`) to predict match outcomes, and the
    unlinkability property tests use it as the observer's complete
    reputation knowledge: everything here is a function of handle tags
    alone, so two transcripts that agree on tags agree on the registry.
    """

    def __init__(self, half_life: int = 64) -> None:
        self.half_life = half_life
        self._records: Dict[int, List[int]] = {}

    def record_outcome(self, tag: int, outcome: str, block: int) -> ReputationRecord:
        record = apply_outcome(
            self._records.get(tag), outcome, block, self.half_life
        )
        self._records[tag] = record
        return ReputationRecord.from_storage(tag, record)

    def score(self, tag: int, block: int) -> int:
        record = self._records.get(tag)
        if record is None:
            return 0
        return decayed_score(
            record[SCORE], record[LAST_BLOCK], block, self.half_life
        )

    def bid_score(self, tag: int, stake: int, block: int) -> int:
        return bid_score(stake, self.score(tag, block))

    def record(self, tag: int) -> Optional[ReputationRecord]:
        stored = self._records.get(tag)
        if stored is None:
            return None
        return ReputationRecord.from_storage(tag, stored)

    def tags(self) -> List[int]:
        return sorted(self._records)

    def __len__(self) -> int:
        return len(self._records)

    @classmethod
    def from_board(cls, node, board_address: bytes) -> "ReputationRegistry":
        """Mirror the on-chain reputation table of a marketplace board."""
        config = node.call(board_address, "get_config")
        registry = cls(half_life=config["rep_half_life"])
        for tag, record in node.call(board_address, "get_all_reputation").items():
            registry._records[tag] = list(record)
        return registry

    def to_wire(self) -> bytes:
        rows = [
            [tag] + list(self._records[tag]) for tag in sorted(self._records)
        ]
        return framed_encode(
            _MAGIC_REGISTRY, _WIRE_VERSION, [self.half_life, rows]
        )

    @classmethod
    def from_wire(cls, data: bytes) -> "ReputationRegistry":
        fields = framed_decode(_MAGIC_REGISTRY, _WIRE_VERSION, data)
        if not isinstance(fields, list) or len(fields) != 2:
            raise ValueError("reputation registry wire must hold two fields")
        half_life, rows = fields
        if not isinstance(half_life, int) or half_life <= 0:
            raise ValueError("half life must be a positive int")
        registry = cls(half_life=half_life)
        if not isinstance(rows, list):
            raise ValueError("registry rows must be a list")
        for row in rows:
            if not isinstance(row, list) or len(row) != 6:
                raise ValueError("registry row must hold exactly six fields")
            if any(not isinstance(v, int) or v < 0 for v in row):
                raise ValueError("registry row fields must be non-negative ints")
            registry._records[row[0]] = row[1:]
        return registry
