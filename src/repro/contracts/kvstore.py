"""A minimal keyed store contract.

Used by the parallel-execution tests and benchmarks as a controllable
source of contract-state contention: `put`/`bump` write slots,
`copy_from` reads *another* KVStore instance (a cross-contract read
that can span execution lanes), and `fail` reverts on demand.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.chain.contract import Contract, ContractRegistry, external, view


@ContractRegistry.register
class KVStore(Contract):
    """Slot storage with deliberate conflict hooks."""

    def init(self) -> None:
        self.storage["writes"] = 0

    @external
    def put(self, key: str, value: Any) -> None:
        self.storage[key] = value
        self.storage["writes"] = self.storage.get("writes", 0) + 1

    @external
    def bump(self, key: str, amount: int = 1) -> int:
        current = self.storage.get(key, 0)
        if not isinstance(current, int):
            current = 0  # slot may hold a copied non-counter value
        total = current + amount
        self.storage[key] = total
        self.emit("Bumped", key=key, total=total)
        return total

    @external
    def copy_from(self, other: bytes, key: str) -> Any:
        value = self.static_read(other, "get", [key])
        self.storage[key] = value
        return value

    @external
    def fail(self, message: str = "kvstore: deliberate revert") -> None:
        self.require(False, message)

    @view
    def get(self, key: str) -> Optional[Any]:
        return self.storage.get(key)
