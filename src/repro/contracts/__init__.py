"""On-chain programs: the RA registry interface and the task contract.

These are the two on-chain components of Fig. 3: the registry contract
publishes the RA's public material (the system master public key /
registration-tree root), and each crowdsourcing task is its own
:class:`~repro.contracts.task.TaskContract` implementing Algorithm 1.
"""

from repro.contracts.kvstore import KVStore
from repro.contracts.marketplace import MarketplaceContract
from repro.contracts.registry import RegistryContract
from repro.contracts.task import TaskContract

__all__ = ["KVStore", "MarketplaceContract", "RegistryContract", "TaskContract"]
