"""The open task marketplace board: bidding, escrow, court, reputation.

ZebraLancer's Algorithm 1 starts from a requester who already knows
its workers.  The board contract supplies the missing front half — an
*open* market — while keeping every participant behind the paper's
anonymity machinery:

- **Listings** walk ``bidding → matched → (disputed) → settled | void``
  with block-height deadlines at every edge (no state waits forever).
- **Bids** are anonymously authenticated with the BOARD's address as
  the common prefix, so each certified worker owns exactly one stable
  tag per board — the pseudonymous reputation handle — and the one-bid-
  per-handle rule is a single Link() sweep, like the task contract's
  double-submission check.
- **Matching** ranks bids by ``bid_score = stake × reputation`` (see
  :mod:`repro.core.reputation`); losers get their stakes back at once,
  winners' stakes stay escrowed as performance bonds.
- **Claims** bridge the anonymity gap between a bid (board-prefix
  address/tag) and a task submission (task-prefix address/tag): a
  *tag-link attestation* proves in zero knowledge that one certified
  key owns both tags, so nobody can claim another worker's submission
  and bonds/bonuses are attributed without linking chain addresses.
- **Escrow** holds quality bonus + validator reward (+ bonds + any
  dispute bond) and :meth:`_settle` provably drains it to zero in one
  transaction — the conservation invariant the accounting layer
  re-derives from chain data.
- **Court**: only the listing's requester may dispute (posting a
  bond); the arbiter's verdict splits the bonus by ``worker_share_ppm``
  when upheld, and awards the bond to the claimed workers when the
  dispute was frivolous — griefing costs exactly the bond.

Quality bonuses split pro-rata over the task contract's SNARK-proved
reward vector: the policy's judgment is already committed on-chain, so
the board never needs to re-run (or trust) the policy evaluation.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro import observability as obs
from repro.chain.contract import Contract, ContractRegistry, external, view
from repro.anonauth.scheme import (
    Attestation,
    attestation_statement,
    tag_link_statement,
    task_prefix,
)
from repro.core.reputation import (
    OUTCOME_COMPLETED,
    OUTCOME_DEFAULTED,
    OUTCOME_DISPUTE_LOST,
    apply_outcome,
    bid_score,
    decayed_score,
)
from repro.serialization import framed_decode, framed_encode

LISTING_BIDDING = "bidding"
LISTING_MATCHED = "matched"
LISTING_DISPUTED = "disputed"
LISTING_SETTLED = "settled"
LISTING_VOID = "void"

#: Task-contract phases the board accepts as settled (see contracts/task.py).
_TASK_SETTLED = ("completed", "defaulted", "aborted")

PPM = 1_000_000

_MAGIC_BID = b"ZLBD"
_MAGIC_ESCROW = b"ZLES"
_MAGIC_VERDICT = b"ZLDV"
_WIRE_VERSION = 1


@dataclass(frozen=True)
class Bid:
    """One bid as announced off-chain / archived by indexers."""

    listing_id: int
    bidder: bytes
    tag: int
    stake: int
    block: int

    def to_wire(self) -> bytes:
        return framed_encode(
            _MAGIC_BID,
            _WIRE_VERSION,
            [self.listing_id, self.bidder, self.tag, self.stake, self.block],
        )

    @classmethod
    def from_wire(cls, data: bytes) -> "Bid":
        fields = framed_decode(_MAGIC_BID, _WIRE_VERSION, data)
        if not isinstance(fields, list) or len(fields) != 5:
            raise ValueError("bid wire must hold exactly five fields")
        listing_id, bidder, tag, stake, block = fields
        for value in (listing_id, tag, stake, block):
            if not isinstance(value, int) or value < 0:
                raise ValueError("bid numeric fields must be non-negative ints")
        if not isinstance(bidder, bytes) or len(bidder) != 20:
            raise ValueError("bidder must be a 20-byte address")
        if stake == 0:
            raise ValueError("a bid must stake a positive amount")
        return cls(
            listing_id=listing_id, bidder=bidder, tag=tag, stake=stake, block=block
        )


@dataclass(frozen=True)
class EscrowState:
    """A listing's escrow decomposition at one instant."""

    listing_id: int
    bonus: int
    validator_reward: int
    stakes: int
    dispute_bond: int
    disbursed: int
    settled: bool

    @property
    def locked(self) -> int:
        return self.bonus + self.validator_reward + self.stakes + self.dispute_bond

    def to_wire(self) -> bytes:
        return framed_encode(
            _MAGIC_ESCROW,
            _WIRE_VERSION,
            [
                self.listing_id,
                self.bonus,
                self.validator_reward,
                self.stakes,
                self.dispute_bond,
                self.disbursed,
                int(self.settled),
            ],
        )

    @classmethod
    def from_wire(cls, data: bytes) -> "EscrowState":
        fields = framed_decode(_MAGIC_ESCROW, _WIRE_VERSION, data)
        if not isinstance(fields, list) or len(fields) != 7:
            raise ValueError("escrow state wire must hold exactly seven fields")
        for value in fields:
            if not isinstance(value, int) or value < 0:
                raise ValueError("escrow fields must be non-negative ints")
        if fields[6] not in (0, 1):
            raise ValueError("settled flag must be a bit")
        return cls(
            listing_id=fields[0],
            bonus=fields[1],
            validator_reward=fields[2],
            stakes=fields[3],
            dispute_bond=fields[4],
            disbursed=fields[5],
            settled=bool(fields[6]),
        )


@dataclass(frozen=True)
class DisputeVerdict:
    """The arbiter's ruling on one dispute.

    ``worker_share_ppm`` is the fraction (parts per million) of the
    quality bonus the claimed workers keep; ``upheld`` decides where
    the requester's dispute bond goes (back when upheld, to the
    claimed workers when frivolous).
    """

    listing_id: int
    upheld: bool
    worker_share_ppm: int
    rationale: str

    def to_wire(self) -> bytes:
        return framed_encode(
            _MAGIC_VERDICT,
            _WIRE_VERSION,
            [self.listing_id, int(self.upheld), self.worker_share_ppm, self.rationale],
        )

    @classmethod
    def from_wire(cls, data: bytes) -> "DisputeVerdict":
        fields = framed_decode(_MAGIC_VERDICT, _WIRE_VERSION, data)
        if not isinstance(fields, list) or len(fields) != 4:
            raise ValueError("verdict wire must hold exactly four fields")
        listing_id, upheld, share, rationale = fields
        if not isinstance(listing_id, int) or listing_id < 0:
            raise ValueError("listing id must be a non-negative int")
        if upheld not in (0, 1):
            raise ValueError("upheld flag must be a bit")
        if not isinstance(share, int) or not 0 <= share <= PPM:
            raise ValueError("worker share must lie in [0, 1e6] ppm")
        if not isinstance(rationale, str):
            raise ValueError("rationale must be a string")
        return cls(
            listing_id=listing_id,
            upheld=bool(upheld),
            worker_share_ppm=share,
            rationale=rationale,
        )


def bid_message(
    board_address: bytes, bidder: bytes, listing_id: int, stake: int
) -> bytes:
    """The exact bytes a bid attestation must authenticate.

    Board prefix first (that is what makes t1 the reputation handle),
    then the bidding one-task address and the bid terms — so an
    attestation cannot be replayed for another bidder, listing or
    stake.
    """
    return (
        task_prefix(board_address)
        + bidder
        + listing_id.to_bytes(8, "big")
        + stake.to_bytes(16, "big")
    )


@ContractRegistry.register
class MarketplaceContract(Contract):
    """One open task board (many listings, one reputation table)."""

    contract_name = "ZebraLancerMarketplace"

    def init(self, registry_address: bytes, arbiter: bytes, config: dict) -> None:
        for key in (
            "bid_window",
            "attach_window",
            "claim_window",
            "dispute_bond",
            "rep_half_life",
            "min_stake",
        ):
            self.require(
                isinstance(config.get(key), int) and config[key] > 0,
                f"config {key} must be a positive integer",
            )
        self.storage["registry"] = registry_address
        self.storage["arbiter"] = arbiter
        self.storage["config"] = dict(config)
        self.storage["listings"] = []
        #: handle tag → [score, completed, defaulted, disputes_lost, last_block]
        self.storage["reputation"] = {}
        self.emit("BoardDeployed", arbiter=arbiter)
        obs.count("market.boards")

    # ----- helpers -------------------------------------------------------------

    def _listing(self, listing_id: int) -> dict:
        listings = self.storage["listings"]
        self.require(
            isinstance(listing_id, int) and 0 <= listing_id < len(listings),
            "unknown listing",
        )
        return listings[listing_id]

    def _save(self, listing: dict) -> None:
        listings = self.storage["listings"]
        listings[listing["id"]] = listing
        self.storage["listings"] = listings

    def _decode_attestation(self, wire: bytes, context: str) -> Attestation:
        try:
            return Attestation.from_wire(wire)
        except (ValueError, TypeError):
            self.require(False, f"{context}: malformed attestation")

    def _require_known_commitment(
        self, attestation: Attestation, context: str
    ) -> None:
        known = self.static_read(
            self.storage["registry"],
            "is_known_commitment",
            [attestation.registry_commitment],
        )
        self.require(known, f"{context}: unknown registry commitment")

    def _auth_vk(self) -> Any:
        return self.static_read(self.storage["registry"], "get_auth_vk", [])

    def _pay(self, listing: dict, recipient: bytes, amount: int, leg: str) -> None:
        """One escrow disbursement, recorded for conservation audits."""
        if amount <= 0:
            return
        self.require(listing["escrow"] >= amount, "escrow underflow")
        self.require(self.transfer(recipient, amount), f"{leg} transfer failed")
        listing["escrow"] -= amount
        listing["disbursed"] += amount
        listing["payouts"].append([recipient, amount, leg])

    def _reputation_update(self, tag: int, outcome: str) -> None:
        table = self.storage["reputation"]
        table[tag] = apply_outcome(
            table.get(tag),
            outcome,
            self.block_number,
            self.storage["config"]["rep_half_life"],
        )
        self.storage["reputation"] = table

    # ----- listings -------------------------------------------------------------

    @external
    def post_task(
        self,
        description: str,
        num_workers: int,
        budget: int,
        quality_bonus: int,
        validator_reward: int,
    ) -> int:
        """Open a listing; escrow the bonus and validator reward now."""
        self.require(
            isinstance(num_workers, int) and num_workers >= 1,
            "a listing needs at least one worker slot",
        )
        self.require(isinstance(budget, int) and budget > 0, "budget must be positive")
        self.require(
            isinstance(quality_bonus, int) and quality_bonus >= 0,
            "quality bonus must be non-negative",
        )
        self.require(
            isinstance(validator_reward, int) and validator_reward >= 0,
            "validator reward must be non-negative",
        )
        self.require(
            self.msg_value == quality_bonus + validator_reward,
            "deposit must equal bonus plus validator reward",
        )
        listings = self.storage["listings"]
        listing = {
            "id": len(listings),
            "requester": self.msg_sender,
            "description": description,
            "num_workers": num_workers,
            "budget": budget,
            "quality_bonus": quality_bonus,
            "validator_reward": validator_reward,
            "state": LISTING_BIDDING,
            "posted_block": self.block_number,
            "bid_deadline": self.block_number + self.storage["config"]["bid_window"],
            "bids": [],
            "matched": [],
            "task": b"",
            "attach_deadline": None,
            "claims": {},
            "validator": b"",
            "audit_ok": None,
            "dispute": None,
            "escrow": quality_bonus + validator_reward,
            "disbursed": 0,
            "payouts": [],
        }
        listings.append(listing)
        self.storage["listings"] = listings
        self.emit(
            "TaskListed",
            listing_id=listing["id"],
            num_workers=num_workers,
            budget=budget,
            quality_bonus=quality_bonus,
            bid_deadline=listing["bid_deadline"],
        )
        obs.count("market.listings")
        return listing["id"]

    # ----- bidding --------------------------------------------------------------

    @external
    def place_bid(self, listing_id: int, stake: int, attestation_wire: bytes) -> int:
        """Stake on a listing under an anonymously authenticated handle."""
        listing = self._listing(listing_id)
        self.require(listing["state"] == LISTING_BIDDING, "listing is not bidding")
        self.require(
            self.block_number <= listing["bid_deadline"], "bidding closed"
        )
        self.require(
            isinstance(stake, int) and self.msg_value == stake,
            "staked value must equal the declared stake",
        )
        self.require(
            stake >= self.storage["config"]["min_stake"], "stake below the minimum"
        )
        attestation = self._decode_attestation(attestation_wire, "bid")
        self._require_known_commitment(attestation, "bid")
        message = bid_message(self.address, self.msg_sender, listing_id, stake)
        statement = attestation_statement(message, attestation)
        self.require(
            self.snark_verify(self._auth_vk(), statement, attestation.proof),
            "bid not authenticated",
        )
        # Link() over the listing's bid pool: one bid per handle, the
        # board-prefix analogue of the task contract's double-submission
        # defence (and what makes sybil flooding require fresh
        # credentials, which start at zero reputation anyway).
        self.require(
            all(bid["tag"] != attestation.t1 for bid in listing["bids"]),
            "one bid per handle",
        )
        bid = {
            "bidder": self.msg_sender,
            "tag": attestation.t1,
            "stake": stake,
            "block": self.block_number,
            "claimed": None,
            "refunded": False,
        }
        listing["bids"].append(bid)
        listing["escrow"] += stake
        self._save(listing)
        self.emit(
            "BidPlaced", listing_id=listing_id, tag=attestation.t1, stake=stake
        )
        obs.count("market.bids")
        return len(listing["bids"]) - 1

    @external
    def match_workers(self, listing_id: int) -> List[int]:
        """Rank bids by ``bid_score`` and lock in the winners.

        Anyone may trigger matching once bidding closes; the ranking is
        deterministic (score, then arrival order), so every node — and
        every client predicting the outcome — agrees on the winner set.
        """
        listing = self._listing(listing_id)
        self.require(listing["state"] == LISTING_BIDDING, "listing is not bidding")
        self.require(
            self.block_number > listing["bid_deadline"], "bidding still open"
        )
        bids = listing["bids"]
        if not bids:
            # Nobody came: hand the deposit back and close the listing.
            self._pay(
                listing,
                listing["requester"],
                listing["quality_bonus"] + listing["validator_reward"],
                "no-bids-refund",
            )
            listing["state"] = LISTING_VOID
            self._save(listing)
            self.emit("ListingVoided", listing_id=listing_id, reason="no bids")
            return []
        table = self.storage["reputation"]
        half_life = self.storage["config"]["rep_half_life"]
        scores = []
        for index, bid in enumerate(bids):
            record = table.get(bid["tag"])
            reputation = (
                decayed_score(record[0], record[4], self.block_number, half_life)
                if record is not None
                else 0
            )
            scores.append((bid_score(bid["stake"], reputation), index))
        order = sorted(range(len(bids)), key=lambda i: (-scores[i][0], i))
        winners = sorted(order[: listing["num_workers"]])
        losers = order[listing["num_workers"] :]
        for index in losers:
            bid = bids[index]
            bid["refunded"] = True
            self._pay(listing, bid["bidder"], bid["stake"], "losing-stake-refund")
        listing["matched"] = winners
        listing["state"] = LISTING_MATCHED
        listing["attach_deadline"] = (
            self.block_number + self.storage["config"]["attach_window"]
        )
        self._save(listing)
        self.emit(
            "WorkersMatched",
            listing_id=listing_id,
            tags=[bids[i]["tag"] for i in winners],
            scores=[scores[i][0] for i in winners],
        )
        obs.count("market.matches")
        return winners

    # ----- task attachment ------------------------------------------------------

    @external
    def attach_task(self, listing_id: int, task_address: bytes) -> None:
        """Bind the listing to its deployed Algorithm-1 task contract.

        The board checks the announced terms against the task's own
        storage — budget at least the listed amount, exactly one answer
        slot per matched worker — so matched workers can trust the
        listing without trusting the (anonymous) requester.
        """
        listing = self._listing(listing_id)
        self.require(
            self.msg_sender == listing["requester"], "only the lister attaches"
        )
        self.require(listing["state"] == LISTING_MATCHED, "listing is not matched")
        self.require(not listing["task"], "task already attached")
        self.require(
            self.block_number <= listing["attach_deadline"],
            "attach window closed",
        )
        params = self.static_read(task_address, "get_params", [])
        self.require(
            params["budget"] >= listing["budget"],
            "task budget below the listed amount",
        )
        self.require(
            params["num_answers"] == len(listing["matched"]),
            "task slots must equal the matched worker count",
        )
        listing["task"] = task_address
        self._save(listing)
        self.emit("TaskAttached", listing_id=listing_id, task=task_address)

    @external
    def void_unattached(self, listing_id: int) -> None:
        """Unwind a matched listing whose requester never attached a task.

        Anyone may call it after the attach deadline: matched workers
        get their bonds back, the requester its deposit — the workers'
        protection against a lister who matched and walked away.
        """
        listing = self._listing(listing_id)
        self.require(listing["state"] == LISTING_MATCHED, "listing is not matched")
        self.require(not listing["task"], "a task was attached")
        self.require(
            self.block_number > listing["attach_deadline"],
            "attach window still open",
        )
        for index in listing["matched"]:
            bid = listing["bids"][index]
            self._pay(listing, bid["bidder"], bid["stake"], "unattached-bond-return")
        self._pay(
            listing,
            listing["requester"],
            listing["quality_bonus"] + listing["validator_reward"],
            "unattached-refund",
        )
        listing["state"] = LISTING_VOID
        self._save(listing)
        self.emit("ListingVoided", listing_id=listing_id, reason="no task attached")

    # ----- claims ---------------------------------------------------------------

    @external
    def report_work(
        self, listing_id: int, answer_index: int, link_attestation_wire: bytes
    ) -> None:
        """Claim a task submission for a matched bid, in zero knowledge.

        The tag-link attestation proves one certified key owns BOTH the
        bid's board tag (t1) and the task submission's tag (t2) — so
        the claim is unforgeable without ever revealing which one-task
        address belongs to which bidder.  Front-running is harmless:
        the claim is keyed to the tags, not to ``msg_sender``.
        """
        listing = self._listing(listing_id)
        self.require(
            listing["state"] in (LISTING_MATCHED, LISTING_DISPUTED),
            "listing does not accept claims",
        )
        self.require(listing["task"], "no task attached")
        tags = self.static_read(listing["task"], "get_tags", [])
        # tags[0] is the requester's; submissions sit at answer_index+1.
        self.require(
            isinstance(answer_index, int)
            and 0 <= answer_index < len(tags) - 1,
            "no such submission",
        )
        attestation = self._decode_attestation(link_attestation_wire, "claim")
        self._require_known_commitment(attestation, "claim")
        statement = tag_link_statement(
            task_prefix(self.address), task_prefix(listing["task"]), attestation
        )
        self.require(
            self.snark_verify(self._auth_vk(), statement, attestation.proof),
            "tag link not proven",
        )
        self.require(
            attestation.t2 == tags[answer_index + 1],
            "claim does not match the submission tag",
        )
        bid_index = next(
            (
                index
                for index in listing["matched"]
                if listing["bids"][index]["tag"] == attestation.t1
            ),
            None,
        )
        self.require(bid_index is not None, "claimant did not win a bid slot")
        self.require(
            listing["bids"][bid_index]["claimed"] is None,
            "handle already claimed a submission",
        )
        self.require(
            answer_index not in listing["claims"], "submission already claimed"
        )
        listing["bids"][bid_index]["claimed"] = answer_index
        listing["claims"][answer_index] = bid_index
        self._save(listing)
        self.emit(
            "WorkClaimed",
            listing_id=listing_id,
            answer_index=answer_index,
            tag=attestation.t1,
        )
        obs.count("market.claims")

    @external
    def validate_task(self, listing_id: int) -> bool:
        """Audit the attached task's submissions; first auditor earns the fee.

        Delegates to the task contract's batched re-verification
        (``audit_submissions``) — the validator reward pays whoever
        spends the gas to anchor that audit on-chain.
        """
        listing = self._listing(listing_id)
        self.require(
            listing["state"] in (LISTING_MATCHED, LISTING_DISPUTED),
            "listing is not awaiting validation",
        )
        self.require(listing["task"], "no task attached")
        self.require(not listing["validator"], "already validated")
        closed = self.static_read(listing["task"], "is_collection_closed", [])
        self.require(closed, "collection still in progress")
        result = bool(
            self.static_read(listing["task"], "audit_submissions", [])
        )
        listing["validator"] = self.msg_sender
        listing["audit_ok"] = result
        self._save(listing)
        self.emit("TaskValidated", listing_id=listing_id, passed=result)
        obs.count("market.validations")
        return result

    # ----- court ----------------------------------------------------------------

    @external
    def open_dispute(self, listing_id: int) -> None:
        """The requester contests the delivered quality, posting a bond."""
        listing = self._listing(listing_id)
        self.require(
            self.msg_sender == listing["requester"], "only the lister disputes"
        )
        self.require(listing["state"] == LISTING_MATCHED, "dispute window closed")
        self.require(listing["task"], "no task attached")
        phase = self.static_read(listing["task"], "get_phase", [])
        self.require(
            phase in ("completed", "defaulted"),
            "nothing to dispute before the task settles",
        )
        bond = self.storage["config"]["dispute_bond"]
        self.require(self.msg_value == bond, "dispute bond must be deposited")
        listing["dispute"] = {
            "disputer": self.msg_sender,
            "bond": bond,
            "verdict": b"",
        }
        listing["escrow"] += bond
        listing["state"] = LISTING_DISPUTED
        self._save(listing)
        self.emit("DisputeOpened", listing_id=listing_id, bond=bond)
        obs.count("market.disputes")

    @external
    def rule_dispute(self, listing_id: int, verdict_wire: bytes) -> None:
        """The arbiter rules; settlement follows in the same transaction."""
        listing = self._listing(listing_id)
        self.require(self.msg_sender == self.storage["arbiter"], "only the court rules")
        self.require(listing["state"] == LISTING_DISPUTED, "no dispute to rule on")
        try:
            verdict = DisputeVerdict.from_wire(verdict_wire)
        except (ValueError, TypeError):
            self.require(False, "malformed verdict")
        self.require(
            verdict.listing_id == listing_id, "verdict names the wrong listing"
        )
        listing["dispute"]["verdict"] = verdict_wire
        self.emit(
            "DisputeRuled",
            listing_id=listing_id,
            upheld=verdict.upheld,
            worker_share_ppm=verdict.worker_share_ppm,
        )
        self._settle(listing, verdict)

    # ----- settlement -----------------------------------------------------------

    @external
    def settle(self, listing_id: int) -> None:
        """Drain the escrow exactly once, after the claim window closes.

        Anyone may settle (the task's own deadlines already bounded
        every earlier stage); the claim window past the task's
        instruction deadline guarantees workers the time to report
        their submissions before unclaimed bonds forfeit.
        """
        listing = self._listing(listing_id)
        self.require(
            listing["state"] == LISTING_MATCHED,
            "dispute pending" if listing["state"] == LISTING_DISPUTED
            else "listing is not settleable",
        )
        self.require(listing["task"], "no task attached")
        phase = self.static_read(listing["task"], "get_phase", [])
        self.require(phase in _TASK_SETTLED, "task not settled yet")
        status = self.static_read(listing["task"], "get_status", [])
        deadline = status["instruction_deadline"]
        self.require(deadline is not None, "collection still in progress")
        self.require(
            self.block_number > deadline + self.storage["config"]["claim_window"],
            "claim window still open",
        )
        self._settle(listing, None)

    def _settle(self, listing: dict, verdict: Optional[DisputeVerdict]) -> None:
        rewards = self.static_read(listing["task"], "get_rewards", [])
        bonus = listing["quality_bonus"]
        requester = listing["requester"]
        claimed = sorted(listing["claims"].items())  # (answer_index, bid_index)

        # Quality-bonus leg: pro-rata over the SNARK-proved task rewards
        # of the claimed slots (the committed policy judgment).  An
        # upheld dispute shrinks the workers' pool to the ruled share.
        worker_pool = bonus
        if verdict is not None and verdict.upheld:
            worker_pool = bonus * verdict.worker_share_ppm // PPM
        weights = [
            rewards[answer_index] if answer_index < len(rewards) else 0
            for answer_index, _ in claimed
        ]
        total_weight = sum(weights)
        paid_bonus = 0
        for (answer_index, bid_index), weight in zip(claimed, weights):
            if total_weight > 0:
                share = worker_pool * weight // total_weight
            elif claimed:
                share = worker_pool // len(claimed)
            else:
                share = 0
            bid = listing["bids"][bid_index]
            self._pay(listing, bid["bidder"], share, "quality-bonus")
            paid_bonus += share
        # Rounding dust and any withheld share return to the requester.
        self._pay(listing, requester, bonus - paid_bonus, "bonus-remainder")

        # Performance bonds: claimed handles get theirs back, no-shows
        # (matched but never claimed) forfeit to the requester.
        for index in listing["matched"]:
            bid = listing["bids"][index]
            if bid["claimed"] is not None:
                self._pay(listing, bid["bidder"], bid["stake"], "bond-return")
            else:
                self._pay(listing, requester, bid["stake"], "bond-forfeit")

        # Validator leg: paid only for an anchored, passing audit.
        if listing["validator"] and listing["audit_ok"]:
            self._pay(
                listing,
                listing["validator"],
                listing["validator_reward"],
                "validator-reward",
            )
        else:
            self._pay(
                listing, requester, listing["validator_reward"], "validator-refund"
            )

        # Dispute bond: back to the disputer when upheld; split over the
        # claimed workers when frivolous (griefing costs the full bond).
        if listing["dispute"] is not None:
            bond = listing["dispute"]["bond"]
            if verdict is not None and verdict.upheld:
                self._pay(
                    listing,
                    listing["dispute"]["disputer"],
                    bond,
                    "dispute-bond-return",
                )
            elif claimed:
                share = bond // len(claimed)
                for position, (_, bid_index) in enumerate(claimed):
                    amount = share + (bond - share * len(claimed) if position == 0 else 0)
                    bid = listing["bids"][bid_index]
                    self._pay(listing, bid["bidder"], amount, "griefing-bond-award")
            else:
                self._pay(
                    listing, self.storage["arbiter"], bond, "court-fee"
                )

        # Reputation: the handle tags earn or lose standing; chain
        # addresses are never keys in this table.
        upheld = verdict is not None and verdict.upheld
        for index in listing["matched"]:
            bid = listing["bids"][index]
            if bid["claimed"] is None:
                self._reputation_update(bid["tag"], OUTCOME_DEFAULTED)
                continue
            weight = (
                rewards[bid["claimed"]] if bid["claimed"] < len(rewards) else 0
            )
            if upheld:
                self._reputation_update(bid["tag"], OUTCOME_DISPUTE_LOST)
            elif weight > 0:
                self._reputation_update(bid["tag"], OUTCOME_COMPLETED)
            else:
                self._reputation_update(bid["tag"], OUTCOME_DEFAULTED)

        self.require(listing["escrow"] == 0, "escrow not fully disbursed")
        listing["state"] = LISTING_SETTLED
        self._save(listing)
        self.emit(
            "ListingSettled",
            listing_id=listing["id"],
            disbursed=listing["disbursed"],
            disputed=listing["dispute"] is not None,
        )
        obs.count("market.settlements")

    # ----- views ----------------------------------------------------------------

    @view
    def num_listings(self) -> int:
        return len(self.storage["listings"])

    @view
    def get_config(self) -> dict:
        return dict(self.storage["config"])

    @view
    def get_arbiter(self) -> bytes:
        return self.storage["arbiter"]

    @view
    def get_listing(self, listing_id: int) -> dict:
        return copy.deepcopy(self._listing(listing_id))

    @view
    def get_open_listings(self) -> List[dict]:
        """What a worker browses: every listing still taking bids."""
        return [
            {
                "id": listing["id"],
                "description": listing["description"],
                "num_workers": listing["num_workers"],
                "budget": listing["budget"],
                "quality_bonus": listing["quality_bonus"],
                "bid_deadline": listing["bid_deadline"],
                "bids": len(listing["bids"]),
            }
            for listing in self.storage["listings"]
            if listing["state"] == LISTING_BIDDING
            and self.block_number <= listing["bid_deadline"]
        ]

    @view
    def get_escrow_state(self, listing_id: int) -> dict:
        """The escrow decomposition :class:`EscrowState` transports."""
        listing = self._listing(listing_id)
        settled = listing["state"] in (LISTING_SETTLED, LISTING_VOID)
        stakes = sum(
            bid["stake"]
            for bid in listing["bids"]
            if not bid["refunded"] and not settled
        )
        dispute_bond = (
            listing["dispute"]["bond"]
            if listing["dispute"] is not None and not settled
            else 0
        )
        return {
            "listing_id": listing["id"],
            "bonus": 0 if settled else listing["quality_bonus"],
            "validator_reward": 0 if settled else listing["validator_reward"],
            "stakes": stakes,
            "dispute_bond": dispute_bond,
            "disbursed": listing["disbursed"],
            "settled": settled,
            "escrow": listing["escrow"],
        }

    @view
    def get_payouts(self, listing_id: int) -> List[List[Any]]:
        """Every escrow disbursement of a listing: [recipient, amount, leg]."""
        return copy.deepcopy(self._listing(listing_id)["payouts"])

    @view
    def get_reputation(self, tag: int) -> List[int]:
        """A handle's raw record (zeros for an unseen tag)."""
        record = self.storage["reputation"].get(tag)
        if record is None:
            return [0, 0, 0, 0, 0]
        return list(record)

    @view
    def get_all_reputation(self) -> Dict[int, List[int]]:
        return copy.deepcopy(self.storage["reputation"])
