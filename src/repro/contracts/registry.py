"""The registration authority's on-chain interface contract.

"The RA's contract simply posits the system's master public key as a
common knowledge stored in the blockchain" (Section VI).  Here it
stores the current registry commitment (Merkle root in merkle mode,
an mpk commitment in schnorr mode), the history of past commitments
(so attestations proved against an older root stay verifiable), and
the Auth circuit's verification key for task contracts to fetch.
"""

from __future__ import annotations

from repro.chain.contract import Contract, ContractRegistry, external, view


@ContractRegistry.register
class RegistryContract(Contract):
    """On-chain registry state, updatable only by the RA."""

    contract_name = "ZebraLancerRegistry"

    def init(self, cert_mode: str, commitment: int, auth_vk) -> None:
        """Deploy with the initial commitment and the Auth verification key."""
        self.storage["authority"] = self.msg_sender
        self.storage["cert_mode"] = cert_mode
        self.storage["commitments"] = [commitment]
        self.storage["auth_vk"] = auth_vk
        self.emit("RegistryDeployed", cert_mode=cert_mode, commitment=commitment)

    @external
    def update_commitment(self, commitment: int) -> None:
        """Publish a new registry commitment (after new registrations)."""
        self.require(
            self.msg_sender == self.storage["authority"],
            "only the registration authority may update the registry",
        )
        history = self.storage["commitments"]
        if history and history[-1] == commitment:
            return
        history.append(commitment)
        self.storage["commitments"] = history
        self.emit("CommitmentUpdated", commitment=commitment)

    @view
    def get_commitment(self) -> int:
        return self.storage["commitments"][-1]

    @view
    def is_known_commitment(self, commitment: int) -> bool:
        return commitment in self.storage["commitments"]

    @view
    def get_auth_vk(self):
        return self.storage["auth_vk"]

    @view
    def get_cert_mode(self) -> str:
        return self.storage["cert_mode"]
