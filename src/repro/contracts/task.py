"""The crowdsourcing task contract — Algorithm 1, line for line.

Lifecycle::

    deploy (budget deposited, requester anonymously authenticated)
      └─ COLLECTING  — workers submit (Verify + Link gate each answer)
          ├─ n answers or T_A blocks → AWARDING
          │    ├─ valid reward instruction within T_I → COMPLETED
          │    └─ T_I expires → DEFAULTED (τ/‖W‖ to every worker)
          └─ zero answers by T_A → ABORTED (full refund)

Differences from the paper's pseudo-code are purely mechanical:
invalid submissions are rejected (transaction reverts) rather than
silently skipped, and flagged-malformed slots *burn* their share (see
``core/reward_circuit.py`` for why that removes the false-flag
incentive).
"""

from __future__ import annotations

from typing import Any, List

from repro import observability as obs
from repro.chain.address import ZERO_ADDRESS
from repro.chain.contract import Contract, ContractRegistry, external, view
from repro.anonauth.scheme import Attestation, attestation_statement, task_prefix
from repro.core.encryption import AnswerCiphertext
from repro.core.reward_circuit import (
    CiphertextEntry,
    padding_entry,
    reward_statement,
)

PHASE_COLLECTING = "collecting"
PHASE_COMPLETED = "completed"
PHASE_DEFAULTED = "defaulted"
PHASE_ABORTED = "aborted"


@ContractRegistry.register
class TaskContract(Contract):
    """One crowdsourcing task (Algorithm 1)."""

    contract_name = "ZebraLancerTask"

    def init(
        self,
        registry_address: bytes,
        requester_address: bytes,
        requester_attestation_wire: bytes,
        params_storage: dict,
        epk_wire: bytes,
        reward_vk: Any,
    ) -> None:
        budget = params_storage["budget"]
        # Line 3: budget deposited and requester identified, or bail out.
        self.require(self.msg_value >= budget, "budget not deposited")
        self.require(
            self.msg_sender == requester_address,
            "task must be deployed from the authenticated one-task address",
        )
        attestation = Attestation.from_wire(requester_attestation_wire)
        self._require_valid_attestation(
            registry_address,
            message=task_prefix(self.address) + requester_address,
            attestation=attestation,
            context="requester not identified",
        )

        self.storage["registry"] = registry_address
        self.storage["requester"] = requester_address
        self.storage["params"] = dict(params_storage)
        self.storage["epk"] = epk_wire
        self.storage["reward_vk"] = reward_vk
        self.storage["deploy_block"] = self.block_number
        self.storage["phase"] = PHASE_COLLECTING
        # Link() pool: the requester's tag participates (Algorithm 1 line 8),
        # which is what blocks the self-colluding downgrade attack.
        self.storage["tags"] = [attestation.t1]
        self.storage["ciphertexts"] = []
        self.storage["submitters"] = []
        # Wire-encoded attestations of accepted submissions, kept so the
        # whole collection phase can be re-audited in one batched
        # verification (see ``audit_submissions``).
        self.storage["attestations"] = []
        self.storage["collection_end_block"] = None
        self.storage["burned"] = 0
        self.emit(
            "TaskPublished",
            requester=requester_address,
            budget=budget,
            num_answers=params_storage["num_answers"],
            description=params_storage["description"],
        )
        obs.count("task.published")

    # ----- helpers -------------------------------------------------------------

    def _require_valid_attestation(
        self,
        registry_address: bytes,
        message: bytes,
        attestation: Attestation,
        context: str,
    ) -> None:
        known = self.static_read(
            registry_address,
            "is_known_commitment",
            [attestation.registry_commitment],
        )
        self.require(known, f"{context}: unknown registry commitment")
        auth_vk = self.static_read(registry_address, "get_auth_vk", [])
        statement = attestation_statement(message, attestation)
        self.require(
            self.snark_verify(auth_vk, statement, attestation.proof),
            context,
        )

    def _answer_deadline(self) -> int:
        return self.storage["deploy_block"] + self.storage["params"]["answer_window"]

    def _collection_end(self):
        """The block collection ended at, or None while still open."""
        end = self.storage["collection_end_block"]
        if end is not None:
            return end
        if self.block_number > self._answer_deadline():
            return self._answer_deadline()
        return None

    def _instruction_deadline(self) -> int:
        end = self._collection_end()
        self.require(end is not None, "collection still in progress")
        return end + self.storage["params"]["instruction_window"]

    # ----- AnswerCollection -------------------------------------------------------

    @external
    def submit_answer(self, ciphertext_wire: bytes, attestation_wire: bytes) -> int:
        """Submit an encrypted, anonymously authenticated answer.

        The authenticated message is α_C ‖ α_i ‖ C_i (footnote 9): the
        attestation binds the ciphertext to the submitting one-task
        address, so a free-rider cannot re-send a broadcast answer from
        his own address.
        """
        with obs.span("contract.submit_answer", task=self.address.hex()):
            index = self._submit_answer(ciphertext_wire, attestation_wire)
        obs.count("task.submissions")
        return index

    def _submit_answer(self, ciphertext_wire: bytes, attestation_wire: bytes) -> int:
        self.require(
            self.storage["phase"] == PHASE_COLLECTING, "task is not collecting"
        )
        self.require(
            self.block_number <= self._answer_deadline(), "answering deadline passed"
        )
        params = self.storage["params"]
        ciphertexts = self.storage["ciphertexts"]
        self.require(len(ciphertexts) < params["num_answers"], "task already full")

        # Independence of submissions: an exact ciphertext copy (the only
        # thing a free-rider can produce without breaking the encryption)
        # is rejected outright.
        self.require(
            ciphertext_wire not in ciphertexts, "duplicate ciphertext rejected"
        )
        ciphertext = AnswerCiphertext.from_wire(ciphertext_wire)
        self.require(
            len(ciphertext.body) == params["answer_arity"],
            "answer arity does not match the policy",
        )

        attestation = Attestation.from_wire(attestation_wire)
        # Link() against every prior valid attestation (O(n^2) equality
        # checks in total — "nearly nothing in practice").  The
        # requester's tag blocks outright (self-collusion defence); other
        # tags count toward the per-identity allowance k (footnote 11).
        tags = self.storage["tags"]
        self.require(
            attestation.t1 != tags[0], "double submission dropped"
        )
        linked = sum(1 for tag in tags[1:] if tag == attestation.t1)
        self.require(
            linked < params.get("submissions_per_worker", 1),
            "double submission dropped",
        )
        self._require_valid_attestation(
            self.storage["registry"],
            message=task_prefix(self.address) + self.msg_sender + ciphertext_wire,
            attestation=attestation,
            context="submission not authenticated",
        )

        tags = self.storage["tags"]
        tags.append(attestation.t1)
        self.storage["tags"] = tags
        ciphertexts.append(ciphertext_wire)
        self.storage["ciphertexts"] = ciphertexts
        submitters = self.storage["submitters"]
        submitters.append(self.msg_sender)
        self.storage["submitters"] = submitters
        attestations = self.storage["attestations"]
        attestations.append(attestation_wire)
        self.storage["attestations"] = attestations
        index = len(ciphertexts) - 1
        if len(ciphertexts) == params["num_answers"]:
            self.storage["collection_end_block"] = self.block_number
        self.emit("AnswerCollected", index=index, submitter=self.msg_sender)
        return index

    # ----- Reward ---------------------------------------------------------------------

    @external
    def submit_reward_instruction(
        self, rewards: List[int], ok_flags: List[int], proof_backend: str,
        proof_payload: bytes,
    ) -> None:
        """The requester's proved instruction R = (R_1..R_n)."""
        with obs.span(
            "contract.submit_reward_instruction", task=self.address.hex()
        ):
            self._submit_reward_instruction(
                rewards, ok_flags, proof_backend, proof_payload
            )
        obs.count("task.reward_instructions")

    def _submit_reward_instruction(
        self, rewards: List[int], ok_flags: List[int], proof_backend: str,
        proof_payload: bytes,
    ) -> None:
        from repro.zksnark.backend import Proof

        self.require(
            self.msg_sender == self.storage["requester"],
            "only the requester instructs rewards",
        )
        self.require(
            self.storage["phase"] == PHASE_COLLECTING, "task is not awaiting rewards"
        )
        end = self._collection_end()
        self.require(end is not None, "collection still in progress")
        self.require(
            self.block_number <= self._instruction_deadline(),
            "instruction deadline passed",
        )
        ciphertext_wires = self.storage["ciphertexts"]
        count = len(ciphertext_wires)
        self.require(count > 0, "nothing to reward")
        params = self.storage["params"]
        n = params["num_answers"]
        # The statement is always n slots wide (the circuit the stored vk
        # belongs to): missing submissions are the paper's ⊥, encoded as
        # canonical flagged padding slots.
        self.require(
            len(rewards) == n and len(ok_flags) == n,
            "instruction length mismatch",
        )
        self.require(all(flag in (0, 1) for flag in ok_flags), "flags must be bits")
        self.require(
            all(flag == 0 for flag in ok_flags[count:]),
            "padding slots must be flagged",
        )
        budget = params["budget"]
        self.require(sum(rewards) <= budget, "instruction exceeds the budget")

        arity = params["answer_arity"]
        entries = []
        for wire, flag in zip(ciphertext_wires, ok_flags[:count]):
            ciphertext = AnswerCiphertext.from_wire(wire)
            entries.append(CiphertextEntry.from_ciphertext(ciphertext, ok=bool(flag)))
        for _ in range(n - count):
            entries.append(padding_entry(arity))
        unit = budget // n
        statement = reward_statement(budget, unit, entries, rewards)
        proof = Proof(backend=proof_backend, payload=proof_payload)
        self.require(
            self.snark_verify(self.storage["reward_vk"], statement, proof),
            "invalid reward proof",
        )

        # Payout per the instruction; flagged *real* submissions burn their
        # share so false-flagging costs the requester exactly a correct
        # answer's pay (padding slots are nobody's cheating — no burn).
        submitters = self.storage["submitters"]
        for submitter, reward in zip(submitters, rewards[:count]):
            if reward > 0:
                self.require(self.transfer(submitter, reward), "payout failed")
        burned = 0
        for flag in ok_flags[:count]:
            if flag == 0:
                self.transfer(ZERO_ADDRESS, unit)
                burned += unit
        self.storage["burned"] = burned
        self.storage["rewards"] = list(rewards[:count])
        self.storage["phase"] = PHASE_COMPLETED
        remaining = self.balance
        if remaining > 0:
            self.transfer(self.storage["requester"], remaining)
        self.emit("TaskCompleted", rewards=list(rewards), burned=burned)

    # ----- timeout handling (Algorithm 1 lines 18-21) -----------------------------------

    @external
    def finalize_timeout(self) -> None:
        """Anyone may settle a task whose requester failed to instruct.

        No answers → full refund; otherwise each worker receives
        τ/‖W‖ as the punitive even split.
        """
        self.require(
            self.storage["phase"] == PHASE_COLLECTING, "task already settled"
        )
        end = self._collection_end()
        self.require(end is not None, "collection still in progress")
        submitters = self.storage["submitters"]
        if not submitters:
            self.storage["phase"] = PHASE_ABORTED
            remaining = self.balance
            if remaining > 0:
                self.transfer(self.storage["requester"], remaining)
            self.emit("TaskAborted")
            return
        self.require(
            self.block_number > self._instruction_deadline(),
            "instruction window still open",
        )
        share = self.storage["params"]["budget"] // len(submitters)
        for submitter in submitters:
            self.require(self.transfer(submitter, share), "even split failed")
        self.storage["rewards"] = [share] * len(submitters)
        self.storage["phase"] = PHASE_DEFAULTED
        remaining = self.balance
        if remaining > 0:
            self.transfer(self.storage["requester"], remaining)
        self.emit("TaskDefaulted", share=share)

    # ----- views -----------------------------------------------------------------------

    @view
    def get_phase(self) -> str:
        return self.storage["phase"]

    @view
    def get_params(self) -> dict:
        return dict(self.storage["params"])

    @view
    def get_epk(self) -> bytes:
        return self.storage["epk"]

    @view
    def get_requester(self) -> bytes:
        return self.storage["requester"]

    @view
    def answer_count(self) -> int:
        return len(self.storage["ciphertexts"])

    @view
    def get_ciphertexts(self) -> List[bytes]:
        return list(self.storage["ciphertexts"])

    @view
    def get_submitters(self) -> List[bytes]:
        return list(self.storage["submitters"])

    @view
    def get_rewards(self) -> List[int]:
        return list(self.storage.get("rewards", []))

    @view
    def get_tags(self) -> List[int]:
        """All linkability tags seen so far (requester's first)."""
        return list(self.storage["tags"])

    @view
    def audit_submissions(self) -> bool:
        """Re-verify every accepted submission in ONE batched check.

        Replays each stored attestation against the message it
        originally authenticated (α_C ‖ α_i ‖ C_i) and hands all n
        statement/proof pairs to the ``snark_batch_verify`` precompile —
        a single random-linear-combination multi-pairing instead of n
        independent verifications.  True whenever the collection phase
        only ever admitted properly authenticated answers (always, for
        an honest chain); auditors and light clients get an O(1)-pairing
        spot check of the whole task.
        """
        with obs.span(
            "contract.audit_submissions",
            task=self.address.hex(),
            answers=len(self.storage["ciphertexts"]),
        ):
            result = self._audit_submissions()
        obs.count("task.audits")
        return result

    def _audit_submissions(self) -> bool:
        registry_address = self.storage["registry"]
        attestation_wires = self.storage["attestations"]
        ciphertext_wires = self.storage["ciphertexts"]
        submitters = self.storage["submitters"]
        statements: List[List[int]] = []
        proofs: List[Any] = []
        for wire, ciphertext_wire, submitter in zip(
            attestation_wires, ciphertext_wires, submitters
        ):
            attestation = Attestation.from_wire(wire)
            known = self.static_read(
                registry_address,
                "is_known_commitment",
                [attestation.registry_commitment],
            )
            self.require(known, "audit: unknown registry commitment")
            message = task_prefix(self.address) + submitter + ciphertext_wire
            statements.append(attestation_statement(message, attestation))
            proofs.append(attestation.proof)
        if not proofs:
            return True
        auth_vk = self.static_read(registry_address, "get_auth_vk", [])
        return self.snark_batch_verify(auth_vk, statements, proofs)

    @view
    def answer_deadline(self) -> int:
        return self._answer_deadline()

    @view
    def is_collection_closed(self) -> bool:
        return self._collection_end() is not None

    @view
    def get_status(self) -> dict:
        """One-call poll for schedulers: phase, progress, and deadline.

        The concurrent engine polls every task every round; folding the
        four reads it needs into one view keeps the polling cost flat
        in the number of in-flight tasks.
        """
        end = self._collection_end()
        return {
            "phase": self.storage["phase"],
            "answers": len(self.storage["ciphertexts"]),
            "deadline": self._answer_deadline(),
            "closed": end is not None,
            # When a quarantined task can invoke finalize_timeout's
            # even-split branch (None while collection is still open).
            "instruction_deadline": (
                end + self.storage["params"]["instruction_window"]
                if end is not None
                else None
            ),
        }
