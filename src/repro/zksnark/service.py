"""A persistent proving service: warmed CRS cache + long-lived fork pool.

:class:`ProvingService` wraps a :class:`~repro.zksnark.groth16.Groth16Backend`
(or any other registered backend) behind the same
:class:`~repro.zksnark.backend.ProvingBackend` interface, adding two
amortizations that matter for a long-running requester node:

- **Warm keys.** ``setup`` is cached per circuit digest, so the trusted
  setup for a circuit shape (e.g. the reward circuit for n workers) is
  paid once per process instead of once per task.  ``warm()`` exposes
  the cache explicitly so a node can pre-generate CRS material at boot.
- **Persistent workers.** With ``jobs > 1``, ``prove_many`` dispatches
  to one long-lived fork pool instead of creating (and tearing down) a
  pool per batch.  The pool is created *after* the key cache is warm,
  so forked children inherit every proving key and generator table
  through copy-on-write memory; batch jobs then ship only
  ``(digest, instance)`` — the multi-megabyte proving keys are never
  re-pickled per job.

On a single-core host the pool is skipped entirely (``jobs=1`` forks
would only add overhead); the warm-key amortization is the honest win
there and is what ``benchmarks/bench_fig4.py`` measures.

The service registers as ``"groth16-service"``, so protocol code can
opt in with ``engine_system(..., backend_name="groth16-service")``.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro import observability as obs
from repro.errors import ProofError
from repro.zksnark.backend import (
    CircuitDefinition,
    KeyPair,
    Proof,
    ProvingBackend,
    full_circuit_digest,
)

#: The service instance whose key cache fork children inherit.  Set
#: immediately before pool creation; workers read it after the fork.
_ACTIVE_SERVICE: Optional["ProvingService"] = None


def _pool_prove_job(job: Tuple[bytes, Any]) -> Proof:
    """Fork-pool worker: prove one ``(digest, instance)`` job.

    Runs in a child process that inherited the parent's warm cache at
    fork time, so the digest lookup never misses.
    """
    digest, instance = job
    service = _ACTIVE_SERVICE
    assert service is not None, "pool worker forked without an active service"
    keys, circuit = service._warm[digest]
    return service._backend.prove(keys.proving_key, circuit, instance)


class ProvingService(ProvingBackend):
    """A drop-in backend that amortizes setup and pool creation."""

    name = "groth16-service"

    def __init__(
        self,
        backend: Optional[ProvingBackend] = None,
        jobs: Optional[int] = None,
    ) -> None:
        if backend is None:
            from repro.zksnark.groth16 import Groth16Backend

            backend = Groth16Backend(jobs=1)
        self._backend = backend
        if jobs is None:
            jobs = int(os.environ.get("REPRO_SNARK_JOBS", "1") or 1)
        self._jobs = max(1, jobs)
        #: digest -> (KeyPair, circuit); the CRS cache children inherit.
        self._warm: Dict[bytes, Tuple[KeyPair, CircuitDefinition]] = {}
        self._pool = None
        #: Digests present when the current pool forked; a job outside
        #: this set forces a pool restart so children re-inherit.
        self._pool_digests: frozenset = frozenset()

    # ----- warm CRS cache ----------------------------------------------------

    def warm(
        self, circuit: CircuitDefinition, seed: Optional[bytes] = None
    ) -> KeyPair:
        """Run (or reuse) the trusted setup for ``circuit``.

        Key material is cached by the full circuit digest, so circuits
        with identical constraint structure and semantics share one
        CRS regardless of object identity.
        """
        digest = full_circuit_digest(circuit)
        entry = self._warm.get(digest)
        if entry is None:
            with obs.span("snark.service.warm", circuit=circuit.name):
                keys = self._backend.setup(circuit, seed=seed)
            self._warm[digest] = (keys, circuit)
            if obs.TRACER.enabled:
                obs.count("snark.service.warm_misses")
            return keys
        if obs.TRACER.enabled:
            obs.count("snark.service.warm_hits")
        return entry[0]

    def warmed_digests(self) -> List[bytes]:
        """Digests with cached key material (diagnostics / tests)."""
        return list(self._warm)

    def _record(self, proving_key: Any, circuit: CircuitDefinition) -> Optional[bytes]:
        """Adopt an externally-set-up key into the warm cache."""
        digest = getattr(proving_key, "circuit_digest", None)
        if digest is not None and digest not in self._warm:
            # The verifying key is unknown here; keep the pair partial.
            self._warm[digest] = (
                KeyPair(proving_key=proving_key, verifying_key=None),
                circuit,
            )
        return digest

    # ----- ProvingBackend interface ------------------------------------------

    def setup(
        self, circuit: CircuitDefinition, seed: Optional[bytes] = None
    ) -> KeyPair:
        return self.warm(circuit, seed=seed)

    def prove(
        self, proving_key: Any, circuit: CircuitDefinition, instance: Any
    ) -> Proof:
        return self._backend.prove(proving_key, circuit, instance)

    def verify(
        self, verifying_key: Any, public_inputs: List[int], proof: Proof
    ) -> bool:
        return self._backend.verify(verifying_key, public_inputs, proof)

    def batch_verify(self, verifying_key, statements, proofs) -> bool:
        return self._backend.batch_verify(verifying_key, statements, proofs)

    def _check_backend(self, proof: Proof) -> None:
        # Proofs carry the delegate's tag; accept those.
        self._backend._check_backend(proof)

    def prove_many(self, requests: Sequence[tuple]) -> List[Proof]:
        """Prove ``(proving_key, circuit, instance)`` jobs in order.

        Keys seen here are adopted into the warm cache; with a
        persistent pool the jobs ship digest-keyed so the proving keys
        travel once (at fork) rather than once per job.
        """
        requests = list(requests)
        if not requests:
            return []
        with obs.span(
            "snark.service.prove_many", backend=self.name, jobs=len(requests)
        ):
            digests = []
            for proving_key, circuit, _ in requests:
                digests.append(self._record(proving_key, circuit))
            if self._jobs > 1 and len(requests) > 1 and all(digests):
                proofs = self._prove_pooled(requests, digests)
            else:
                proofs = [
                    self._backend.prove(pk, circuit, instance)
                    for pk, circuit, instance in requests
                ]
        if obs.TRACER.enabled:
            obs.count("snark.service.prove_many.calls")
            obs.count("snark.service.prove_many.jobs", len(requests))
        return proofs

    # ----- persistent pool ---------------------------------------------------

    def _ensure_pool(self):
        global _ACTIVE_SERVICE
        needed = frozenset(self._warm)
        if self._pool is not None and needed <= self._pool_digests:
            return self._pool
        import multiprocessing as mp

        try:
            ctx = mp.get_context("fork")
        except ValueError:
            return None
        self._close_pool()
        _ACTIVE_SERVICE = self
        self._pool = ctx.Pool(self._jobs)
        self._pool_digests = needed
        if obs.TRACER.enabled:
            obs.count("snark.service.pool_starts")
        return self._pool

    def _prove_pooled(self, requests, digests) -> List[Proof]:
        pool = self._ensure_pool()
        if pool is None:  # fork unavailable on this platform
            return [
                self._backend.prove(pk, circuit, instance)
                for pk, circuit, instance in requests
            ]
        jobs = [
            (digest, instance)
            for digest, (_, _, instance) in zip(digests, requests)
        ]
        return pool.map(_pool_prove_job, jobs)

    def _close_pool(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
            self._pool_digests = frozenset()

    def close(self) -> None:
        """Shut down the worker pool (the warm cache stays usable)."""
        self._close_pool()

    def __enter__(self) -> "ProvingService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
