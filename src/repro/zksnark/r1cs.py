"""Rank-1 constraint systems.

An R1CS over field F is a list of constraints ``<A_i, w> * <B_i, w> =
<C_i, w>`` where ``w`` is the wire assignment ``(1, x_1..x_l,
a_1..a_m)`` — constant one, then public (statement) wires, then private
(auxiliary) wires.  Linear combinations are stored sparsely as
``{wire_index: coefficient}`` dicts.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import Dict, List, Sequence

from repro.errors import UnsatisfiedConstraintError
from repro.zksnark.field import PrimeField

SparseLC = Dict[int, int]


@dataclass
class R1CSConstraint:
    """A single constraint <a,w> * <b,w> = <c,w> with sparse rows."""

    a: SparseLC
    b: SparseLC
    c: SparseLC
    annotation: str = ""


@dataclass
class R1CS:
    """A full constraint system plus wire layout metadata.

    Attributes:
        field: the prime field constraints live in.
        num_public: number of statement wires (excluding the constant 1).
        num_wires: total wires including the constant-one wire 0.
        constraints: the constraint list.
    """

    field: PrimeField
    num_public: int
    num_wires: int
    constraints: List[R1CSConstraint] = dataclass_field(default_factory=list)

    @property
    def num_constraints(self) -> int:
        return len(self.constraints)

    @property
    def num_aux(self) -> int:
        return self.num_wires - 1 - self.num_public

    def eval_lc(self, lc: SparseLC, assignment: Sequence[int]) -> int:
        total = 0
        for index, coeff in lc.items():
            total += coeff * assignment[index]
        return total % self.field.modulus

    def is_satisfied(self, assignment: Sequence[int]) -> bool:
        """Check a full wire assignment against every constraint."""
        try:
            self.check_satisfied(assignment)
        except UnsatisfiedConstraintError:
            return False
        return True

    def check_satisfied(self, assignment: Sequence[int]) -> None:
        """Like :meth:`is_satisfied` but raises with the failing constraint."""
        if len(assignment) != self.num_wires:
            raise UnsatisfiedConstraintError(
                f"assignment has {len(assignment)} wires, system has {self.num_wires}"
            )
        if assignment[0] != 1:
            raise UnsatisfiedConstraintError("wire 0 must carry the constant 1")
        p = self.field.modulus
        for idx, cons in enumerate(self.constraints):
            lhs = self.eval_lc(cons.a, assignment) * self.eval_lc(cons.b, assignment) % p
            rhs = self.eval_lc(cons.c, assignment)
            if lhs != rhs:
                label = f" ({cons.annotation})" if cons.annotation else ""
                raise UnsatisfiedConstraintError(
                    f"constraint {idx}{label} unsatisfied: {lhs} != {rhs}"
                )

    def structure_digest(self) -> bytes:
        """A stable hash of the constraint structure (not of any witness).

        Backends key their proving/verifying material on this digest so a
        proof can never be verified against keys for a different circuit.
        """
        from repro.crypto.hashing import sha256
        from repro.serialization import encode

        rows = []
        for cons in self.constraints:
            rows.append(
                [
                    sorted(cons.a.items()),
                    sorted(cons.b.items()),
                    sorted(cons.c.items()),
                ]
            )
        flat = [
            self.field.modulus,
            self.num_public,
            self.num_wires,
            [[ [list(t) for t in row_part] for row_part in row] for row in rows],
        ]
        return sha256(b"r1cs-digest", encode(flat))
