"""Prime-field arithmetic.

:class:`PrimeField` is a lightweight field descriptor; circuit code works
with plain Python ints reduced modulo the field order (for speed inside
the prover's hot loops) while :class:`FieldElement` offers an ergonomic
wrapper for user-facing code and tests.

``FR`` is the BN128 *scalar* field — the field R1CS constraints live in,
and also the base field of the embedded Baby-Jubjub curve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

#: BN128 group order (a.k.a. the scalar field / circuit field modulus).
BN128_SCALAR_FIELD = (
    21888242871839275222246405745257275088548364400416034343698204186575808495617
)

#: BN128 base-field modulus (coordinates of G1 points live here).
BN128_BASE_FIELD = (
    21888242871839275222246405745257275088696311157297823662689037894645226208583
)


class PrimeField:
    """A prime field GF(p) with helpers for int-based arithmetic."""

    def __init__(self, modulus: int, name: str = "GF(p)") -> None:
        if modulus < 2:
            raise ValueError("field modulus must be at least 2")
        self.modulus = modulus
        self.name = name

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"PrimeField({self.name}, bits={self.modulus.bit_length()})"

    def reduce(self, value: int) -> int:
        return value % self.modulus

    def add(self, a: int, b: int) -> int:
        return (a + b) % self.modulus

    def sub(self, a: int, b: int) -> int:
        return (a - b) % self.modulus

    def mul(self, a: int, b: int) -> int:
        return (a * b) % self.modulus

    def neg(self, a: int) -> int:
        return -a % self.modulus

    def inv(self, a: int) -> int:
        if a % self.modulus == 0:
            raise ZeroDivisionError("inverse of zero in prime field")
        return pow(a, -1, self.modulus)

    def div(self, a: int, b: int) -> int:
        return (a * self.inv(b)) % self.modulus

    def exp(self, a: int, e: int) -> int:
        return pow(a, e, self.modulus)

    def element(self, value: int) -> "FieldElement":
        return FieldElement(self, value % self.modulus)

    def zero(self) -> "FieldElement":
        return self.element(0)

    def one(self) -> "FieldElement":
        return self.element(1)

    def sum(self, values: Iterable[int]) -> int:
        total = 0
        for v in values:
            total += v
        return total % self.modulus

    def byte_length(self) -> int:
        return (self.modulus.bit_length() + 7) // 8

    def to_bytes(self, value: int) -> bytes:
        return (value % self.modulus).to_bytes(self.byte_length(), "big")

    def from_bytes(self, data: bytes, strict: bool = True) -> int:
        """Decode a big-endian field element.

        Strict (the default) enforces the canonical encoding: exactly
        :meth:`byte_length` bytes and a value below the modulus.
        Accepting out-of-range values and reducing them — the old
        behaviour, still reachable with ``strict=False`` for hash-to-
        field style callers — makes every element decodable from many
        distinct byte strings, an encoding-malleability hole wherever
        the bytes are signed, committed to, or deduplicated.
        """
        if not strict:
            return int.from_bytes(data, "big") % self.modulus
        if len(data) != self.byte_length():
            raise ValueError(
                f"{self.name} encoding must be exactly {self.byte_length()} bytes"
            )
        value = int.from_bytes(data, "big")
        if value >= self.modulus:
            raise ValueError(f"non-canonical {self.name} encoding (>= modulus)")
        return value


@dataclass(frozen=True)
class FieldElement:
    """An immutable element of a :class:`PrimeField` with operator sugar."""

    field: PrimeField
    value: int

    def _coerce(self, other) -> int:
        if isinstance(other, FieldElement):
            if other.field.modulus != self.field.modulus:
                raise ValueError("field mismatch")
            return other.value
        if isinstance(other, int):
            return other % self.field.modulus
        return NotImplemented  # type: ignore[return-value]

    def __add__(self, other):
        v = self._coerce(other)
        if v is NotImplemented:
            return NotImplemented
        return FieldElement(self.field, (self.value + v) % self.field.modulus)

    __radd__ = __add__

    def __sub__(self, other):
        v = self._coerce(other)
        if v is NotImplemented:
            return NotImplemented
        return FieldElement(self.field, (self.value - v) % self.field.modulus)

    def __rsub__(self, other):
        v = self._coerce(other)
        if v is NotImplemented:
            return NotImplemented
        return FieldElement(self.field, (v - self.value) % self.field.modulus)

    def __mul__(self, other):
        v = self._coerce(other)
        if v is NotImplemented:
            return NotImplemented
        return FieldElement(self.field, (self.value * v) % self.field.modulus)

    __rmul__ = __mul__

    def __truediv__(self, other):
        v = self._coerce(other)
        if v is NotImplemented:
            return NotImplemented
        return FieldElement(self.field, self.field.div(self.value, v))

    def __neg__(self):
        return FieldElement(self.field, -self.value % self.field.modulus)

    def __pow__(self, exponent: int):
        if exponent < 0:
            # Route through field.inv so 0 ** -n raises ZeroDivisionError
            # (matching division) instead of CPython's bare ValueError.
            base = self.field.inv(self.value)
            return FieldElement(
                self.field, pow(base, -exponent, self.field.modulus)
            )
        return FieldElement(self.field, pow(self.value, exponent, self.field.modulus))

    def inverse(self) -> "FieldElement":
        return FieldElement(self.field, self.field.inv(self.value))

    def __eq__(self, other) -> bool:
        if isinstance(other, FieldElement):
            return (
                self.field.modulus == other.field.modulus and self.value == other.value
            )
        if isinstance(other, int):
            return self.value == other % self.field.modulus
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.field.modulus, self.value))

    def __int__(self) -> int:
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Fp({self.value})"


#: The BN128 scalar field: every R1CS constraint in this library is over FR.
FR = PrimeField(BN128_SCALAR_FIELD, name="BN128-Fr")

#: The BN128 base field (used by the pairing tower in :mod:`repro.zksnark.bn128`).
FQ_FIELD = PrimeField(BN128_BASE_FIELD, name="BN128-Fq")
