"""Boolean / bit-twiddling gadgets: decomposition, equality, comparisons."""

from __future__ import annotations

from typing import List

from repro.errors import CircuitError
from repro.zksnark.circuit import ConstraintSystem, LCLike, LinearCombination, Variable


def number_to_bits(cs: ConstraintSystem, value: LCLike, bits: int) -> List[Variable]:
    """Decompose ``value`` into ``bits`` little-endian boolean wires.

    Enforces each wire is a bit and that the weighted sum reconstructs
    the value, i.e. the decomposition also acts as a range check
    ``value < 2**bits``.
    """
    lc = cs.coerce(value)
    native = lc.value
    if native.bit_length() > bits:
        raise CircuitError(
            f"value needs {native.bit_length()} bits, gadget allows {bits}"
        )
    bit_vars: List[Variable] = []
    for i in range(bits):
        bit = cs.alloc((native >> i) & 1)
        cs.enforce_boolean(bit, annotation=f"bit[{i}]")
        bit_vars.append(bit)
    acc = cs.constant(0)
    for i, bit in enumerate(bit_vars):
        acc = acc + bit * (1 << i)
    cs.enforce_equal(acc, lc, annotation="bit recomposition")
    return bit_vars


def bits_to_number(cs: ConstraintSystem, bits: List[LCLike]) -> LinearCombination:
    """Pack little-endian bits into a number (callers must know they are bits)."""
    acc = cs.constant(0)
    for i, bit in enumerate(bits):
        acc = acc + cs.coerce(bit) * (1 << i)
    return acc


def assert_bit_length(cs: ConstraintSystem, value: LCLike, bits: int) -> None:
    """Range-check ``value < 2**bits`` (throwaway decomposition)."""
    number_to_bits(cs, value, bits)


def is_zero(cs: ConstraintSystem, value: LCLike) -> Variable:
    """Allocate a bit that is 1 iff ``value == 0``.

    Classic construction: witness ``inv`` = value^-1 (or anything when
    value is 0) and enforce ``out = 1 - value*inv`` and ``value*out = 0``.
    """
    lc = cs.coerce(value)
    native = lc.value
    inv = cs.alloc(0 if native == 0 else cs.field.inv(native))
    out = cs.alloc(1 if native == 0 else 0)
    cs.enforce(lc, inv, cs.one - out, annotation="is_zero inverse")
    cs.enforce(lc, out, cs.constant(0), annotation="is_zero annihilation")
    return out


def is_equal(cs: ConstraintSystem, a: LCLike, b: LCLike) -> Variable:
    """Allocate a bit that is 1 iff a == b."""
    return is_zero(cs, cs.coerce(a) - cs.coerce(b))


def less_than(cs: ConstraintSystem, a: LCLike, b: LCLike, bits: int) -> Variable:
    """Allocate a bit = (a < b) for values known to fit in ``bits`` bits.

    Uses the shifted-difference trick: ``diff = 2**bits + a - b`` fits in
    ``bits+1`` bits and its top bit is 0 exactly when a < b.
    """
    lc_a = cs.coerce(a)
    lc_b = cs.coerce(b)
    assert_bit_length(cs, lc_a, bits)
    assert_bit_length(cs, lc_b, bits)
    shifted = lc_a + (1 << bits) - lc_b
    diff_bits = number_to_bits(cs, shifted, bits + 1)
    top = diff_bits[-1]
    result = cs.alloc(1 - top.value)
    cs.enforce_equal(result, cs.one - top, annotation="less_than flip")
    return result


def assert_less_than_constant(
    cs: ConstraintSystem, bits: List[Variable], constant: int
) -> None:
    """Enforce that little-endian ``bits`` encode an integer < ``constant``.

    Used for *strict* field-element decompositions: a 254-bit
    decomposition of x ∈ Fr is ambiguous (x and x + r may both fit), so
    the bits are additionally constrained below the field modulus.
    Scans from the most significant bit maintaining an "equal so far"
    product; ~1 constraint per bit.
    """
    if constant <= 0:
        raise CircuitError("constant must be positive")
    if constant.bit_length() > len(bits):
        return  # everything representable is already smaller
    eq_so_far = cs.one
    lt_acc = cs.constant(0)
    for i in range(len(bits) - 1, -1, -1):
        bit = bits[i]
        c_bit = (constant >> i) & 1
        if c_bit == 1:
            # value is smaller if this bit is 0 while all higher bits matched
            lt_term = cs.mul(eq_so_far, cs.one - bit, annotation="ltc term")
            lt_acc = lt_acc + lt_term
            eq_so_far = cs.mul(eq_so_far, bit, annotation="ltc eq").lc()
        else:
            # constant bit is 0: staying equal requires our bit to be 0 too
            eq_so_far = cs.mul(eq_so_far, cs.one - bit, annotation="ltc eq0").lc()
    cs.enforce_equal(lt_acc, cs.one, annotation="strictly less than constant")


def number_to_bits_strict(
    cs: ConstraintSystem, value: LCLike, bits: int | None = None
) -> List[Variable]:
    """Canonical (unique) bit decomposition of a field element.

    Decomposes into ``bits`` wires (default: enough for the modulus) and
    additionally enforces the integer they encode is below the field
    modulus, removing the +r aliasing of plain :func:`number_to_bits`.
    """
    width = bits if bits is not None else cs.field.modulus.bit_length()
    bit_vars = number_to_bits(cs, value, width)
    assert_less_than_constant(cs, bit_vars, cs.field.modulus)
    return bit_vars


def logical_and(cs: ConstraintSystem, a: LCLike, b: LCLike) -> Variable:
    """AND of two bits (callers guarantee booleanness)."""
    return cs.mul(a, b, annotation="and")


def logical_or(cs: ConstraintSystem, a: LCLike, b: LCLike) -> Variable:
    """OR of two bits: a + b - a*b."""
    lc_a = cs.coerce(a)
    lc_b = cs.coerce(b)
    prod = cs.mul(lc_a, lc_b, annotation="or product")
    out = cs.alloc((lc_a.value + lc_b.value - prod.value) % cs.field.modulus)
    cs.enforce_equal(out, lc_a + lc_b - prod, annotation="or")
    return out


def logical_not(cs: ConstraintSystem, a: LCLike) -> LinearCombination:
    """NOT of a bit, as a linear combination (no new constraint)."""
    return cs.one - cs.coerce(a)
