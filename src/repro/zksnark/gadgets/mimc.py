"""MiMC-7: the SNARK-friendly keyed permutation / hash.

MiMC (Albrecht et al., Asiacrypt 2016) with exponent 7, which is a
permutation of the BN128 scalar field (gcd(7, r−1) = 1).  This is the
in-circuit hash the paper's statements need (tags ``t1 = H(p, sk)``,
``t2 = H(p‖m, sk)``, certificate trees, and the circuit-friendly answer
encryption described in DESIGN.md §2.3).

Primitives:

- ``mimc_encrypt(k, x)``: E_k(x) = r_R + k where r_0 = x and
  r_{i+1} = (r_i + k + c_i)^7 — the classic MiMC block cipher.
- ``mimc_hash(x_1..x_n)``: Miyaguchi–Preneel chaining of E:
  h_0 = iv, h_{j+1} = E_{h_j}(x_j) + h_j + x_j.

Round constants are nothing-up-my-sleeve values derived from SHA-256;
``c_0 = 0`` as in the reference design.  Each round costs 4 constraints
(x², x⁴, x⁶, x⁷).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import List, Sequence, Tuple

from repro.crypto.hashing import hash_to_int
from repro.zksnark.circuit import ConstraintSystem, LCLike, LinearCombination
from repro.zksnark.field import FR, PrimeField

_DEFAULT_IV_DOMAIN = b"zebralancer-mimc-iv"


@dataclass(frozen=True)
class MiMCParameters:
    """Round count + derived constants for a field."""

    rounds: int
    constants: Tuple[int, ...]
    modulus: int

    @classmethod
    @lru_cache(maxsize=None)
    def for_rounds(cls, rounds: int, field: PrimeField = FR) -> "MiMCParameters":
        constants = [0]
        for i in range(1, rounds):
            constants.append(
                hash_to_int(i.to_bytes(4, "big"), field.modulus, domain=b"mimc-round")
            )
        return cls(rounds=rounds, constants=tuple(constants), modulus=field.modulus)

    @property
    def iv(self) -> int:
        return hash_to_int(_DEFAULT_IV_DOMAIN, self.modulus, domain=b"mimc-iv")


def mimc_encrypt_native(key: int, message: int, params: MiMCParameters) -> int:
    """E_k(x) on plain ints."""
    p = params.modulus
    state = message % p
    key %= p
    for constant in params.constants:
        state = pow((state + key + constant) % p, 7, p)
    return (state + key) % p


def mimc_hash_native(inputs: Sequence[int], params: MiMCParameters) -> int:
    """Miyaguchi–Preneel MiMC hash of a sequence of field elements."""
    p = params.modulus
    state = params.iv
    for value in inputs:
        value %= p
        state = (mimc_encrypt_native(state, value, params) + state + value) % p
    return state


def _seventh_power(cs: ConstraintSystem, base: LinearCombination) -> LinearCombination:
    x2 = cs.mul(base, base, annotation="mimc x^2")
    x4 = cs.mul(x2, x2, annotation="mimc x^4")
    x6 = cs.mul(x4, x2, annotation="mimc x^6")
    x7 = cs.mul(x6, base, annotation="mimc x^7")
    return x7.lc()


def mimc_encrypt(
    cs: ConstraintSystem, key: LCLike, message: LCLike, params: MiMCParameters
) -> LinearCombination:
    """In-circuit E_k(x); 4 constraints per round."""
    key_lc = cs.coerce(key)
    state = cs.coerce(message)
    for constant in params.constants:
        state = _seventh_power(cs, state + key_lc + constant)
    return state + key_lc


def mimc_hash(
    cs: ConstraintSystem, inputs: Sequence[LCLike], params: MiMCParameters
) -> LinearCombination:
    """In-circuit Miyaguchi–Preneel MiMC hash."""
    state: LinearCombination = cs.constant(params.iv)
    for value in inputs:
        value_lc = cs.coerce(value)
        encrypted = mimc_encrypt(cs, state, value_lc, params)
        state = encrypted + state + value_lc
    return state
