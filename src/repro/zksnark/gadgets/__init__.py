"""Reusable R1CS gadgets.

Each gadget comes in two flavours that are kept in lock-step:

- a *native* function computing the same map on plain field ints (used
  off-circuit by clients, the RA, and the contract's Link algorithm);
- a *circuit* function that allocates wires inside a
  :class:`~repro.zksnark.circuit.ConstraintSystem` and enforces the map.

The test suite checks the two flavours agree on random inputs.
"""

from repro.zksnark.gadgets.boolean import (
    assert_bit_length,
    bits_to_number,
    is_equal,
    is_zero,
    less_than,
    number_to_bits,
)
from repro.zksnark.gadgets.arithmetic import conditional_select, inner_product
from repro.zksnark.gadgets.mimc import (
    MiMCParameters,
    mimc_encrypt,
    mimc_encrypt_native,
    mimc_hash,
    mimc_hash_native,
)

__all__ = [
    "assert_bit_length",
    "bits_to_number",
    "is_equal",
    "is_zero",
    "less_than",
    "number_to_bits",
    "conditional_select",
    "inner_product",
    "MiMCParameters",
    "mimc_encrypt",
    "mimc_encrypt_native",
    "mimc_hash",
    "mimc_hash_native",
]
