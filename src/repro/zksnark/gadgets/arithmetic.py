"""Arithmetic helper gadgets: selection, inner products, argmax support."""

from __future__ import annotations

from typing import List, Sequence

from repro.zksnark.circuit import ConstraintSystem, LCLike, LinearCombination, Variable


def conditional_select(
    cs: ConstraintSystem, condition: LCLike, if_true: LCLike, if_false: LCLike
) -> Variable:
    """out = condition ? if_true : if_false, for a boolean condition.

    One constraint: out = condition * (if_true - if_false) + if_false.
    """
    cond = cs.coerce(condition)
    t = cs.coerce(if_true)
    f = cs.coerce(if_false)
    delta = t - f
    out = cs.alloc((cond.value * delta.value + f.value) % cs.field.modulus)
    cs.enforce(cond, delta, out - f, annotation="select")
    return out


def inner_product(
    cs: ConstraintSystem, left: Sequence[LCLike], right: Sequence[LCLike]
) -> LinearCombination:
    """Σ left_i * right_i as a chain of product wires."""
    if len(left) != len(right):
        raise ValueError("inner product operands must have equal length")
    acc = cs.constant(0)
    for a, b in zip(left, right):
        acc = acc + cs.mul(a, b, annotation="inner product term")
    return acc


def linear_sum(cs: ConstraintSystem, terms: Sequence[LCLike]) -> LinearCombination:
    """Σ terms, purely linear (no constraints)."""
    acc = cs.constant(0)
    for term in terms:
        acc = acc + cs.coerce(term)
    return acc


def enforce_one_hot(cs: ConstraintSystem, flags: Sequence[LCLike]) -> None:
    """Enforce that boolean flags sum to exactly 1."""
    acc = cs.constant(0)
    for flag in flags:
        acc = acc + cs.coerce(flag)
    cs.enforce_equal(acc, cs.one, annotation="one-hot")


def scaled_sum(
    cs: ConstraintSystem, values: Sequence[LCLike], weights: Sequence[int]
) -> LinearCombination:
    """Σ weights_i * values_i with constant weights (purely linear)."""
    if len(values) != len(weights):
        raise ValueError("values/weights length mismatch")
    acc = cs.constant(0)
    for value, weight in zip(values, weights):
        acc = acc + cs.coerce(value) * weight
    return acc
