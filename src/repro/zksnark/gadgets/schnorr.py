"""Schnorr signatures over Baby-Jubjub with an in-circuit verifier.

This backs the paper-faithful ``schnorr`` certificate mode: the RA signs
a worker's public key, and the Auth circuit verifies the signature
inside the SNARK (the ``CertVrfy(cert, pk, mpk) = 1`` clause of the
language L_T in Section V-A).

To keep the circuit free of non-native modular reductions, the scheme
uses *reduction-free* scalars: with secrets and nonces below
2^scalar_bits and challenges truncated to scalar_bits bits, the response
``s = k + e·sk`` is computed over the integers, and the verification
equation ``s·B = R + e·PK`` holds in the group directly.  The
:class:`~repro.profiles.SecurityProfile` fixes ``scalar_bits`` (251 in
production).
"""

from __future__ import annotations

import secrets as _secrets
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.crypto.hashing import hash_to_int
from repro.errors import SignatureError
from repro.zksnark.circuit import ConstraintSystem, LinearCombination
from repro.zksnark.field import BN128_SCALAR_FIELD
from repro.zksnark.gadgets import babyjubjub as bjj
from repro.zksnark.gadgets.boolean import bits_to_number, number_to_bits, number_to_bits_strict
from repro.zksnark.gadgets.mimc import MiMCParameters, mimc_hash_native, mimc_hash

_P = BN128_SCALAR_FIELD


@dataclass(frozen=True)
class SchnorrSignature:
    """A signature (R, s) with s a plain integer (reduction-free)."""

    r_point: bjj.Point
    s: int


@dataclass(frozen=True)
class SchnorrParameters:
    """Scheme parameters: scalar width and the MiMC challenge hash."""

    scalar_bits: int
    mimc: MiMCParameters

    @property
    def s_bits(self) -> int:
        # s = k + e*sk with k, e, sk < 2^scalar_bits, so s < 2^(2*scalar_bits+1).
        return 2 * self.scalar_bits + 1


def generate_keypair(
    params: SchnorrParameters, seed: Optional[bytes] = None
) -> Tuple[int, bjj.Point]:
    """Sample sk < 2^scalar_bits and derive pk = sk·B."""
    if seed is not None:
        sk = hash_to_int(seed, 1 << params.scalar_bits, domain=b"schnorr-sk")
    else:
        sk = _secrets.randbelow(1 << params.scalar_bits)
    sk = sk or 1
    return sk, bjj.point_mul(sk, bjj.BASE_POINT)


def _challenge(
    params: SchnorrParameters, r_point: bjj.Point, message: Sequence[int]
) -> int:
    digest = mimc_hash_native([r_point[0], r_point[1], *message], params.mimc)
    return digest % (1 << params.scalar_bits)


def sign(params: SchnorrParameters, secret_key: int, message: Sequence[int]) -> SchnorrSignature:
    """Sign a tuple of field elements (deterministic nonce)."""
    if not 0 < secret_key < (1 << params.scalar_bits):
        raise SignatureError("secret key outside the reduction-free range")
    nonce_material = b"".join(v.to_bytes(32, "big") for v in (secret_key, *message))
    k = hash_to_int(nonce_material, 1 << params.scalar_bits, domain=b"schnorr-nonce") or 1
    r_point = bjj.point_mul(k, bjj.BASE_POINT)
    e = _challenge(params, r_point, message)
    s = k + e * secret_key
    return SchnorrSignature(r_point=r_point, s=s)


def verify(
    params: SchnorrParameters,
    public_key: bjj.Point,
    message: Sequence[int],
    signature: SchnorrSignature,
) -> bool:
    """Native verification of s·B = R + e·PK."""
    if not bjj.is_on_curve(signature.r_point) or not bjj.is_on_curve(public_key):
        return False
    if not 0 <= signature.s < (1 << params.s_bits):
        return False
    e = _challenge(params, signature.r_point, message)
    lhs = bjj.point_mul(signature.s, bjj.BASE_POINT)
    rhs = bjj.point_add(signature.r_point, bjj.point_mul(e, public_key))
    return lhs == rhs


def verify_gadget(
    cs: ConstraintSystem,
    params: SchnorrParameters,
    mpk: bjj.Point,
    message: Sequence[LinearCombination],
    pk_message_extra: Sequence[LinearCombination],
    signature: SchnorrSignature,
) -> None:
    """Enforce, in-circuit, that ``signature`` is the RA's signature.

    ``mpk`` is a *circuit constant* (the RA key is fixed at SNARK setup,
    matching the paper where Setup emits both PP and the RA keys), so
    both scalar multiplications are fixed-base.  ``message`` is the list
    of signed field elements as circuit wires; ``pk_message_extra`` is
    appended to it (kept separate purely for call-site clarity).
    """
    full_message = list(message) + list(pk_message_extra)
    # Witness the signature.
    r_x = cs.alloc(signature.r_point[0]).lc()
    r_y = cs.alloc(signature.r_point[1]).lc()
    bjj.enforce_on_curve(cs, (r_x, r_y))
    s_wire = cs.alloc(signature.s)
    s_bits = number_to_bits(cs, s_wire, params.s_bits)
    # Challenge e = H(Rx, Ry, message...) truncated to scalar_bits.
    e_full = mimc_hash(cs, [r_x, r_y, *full_message], params.mimc)
    e_bits_full = number_to_bits_strict(cs, e_full)
    e_bits = e_bits_full[: params.scalar_bits]
    # s·B and R + e·MPK, both fixed-base.
    lhs = bjj.fixed_base_mul(cs, s_bits, bjj.BASE_POINT)
    e_mpk = bjj.fixed_base_mul(cs, e_bits, mpk)
    rhs = bjj.point_add_gadget(cs, (r_x, r_y), e_mpk)
    bjj.point_equal_gadget(cs, lhs, rhs)
