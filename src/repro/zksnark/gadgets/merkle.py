"""MiMC Merkle trees: the RA's registration accumulator.

In the default ``merkle`` certificate mode the registration authority
maintains a fixed-depth append-only Merkle tree of certified public
keys and publishes the root on-chain; a certificate is the membership
path, and the Auth circuit proves membership without revealing which
leaf (Semaphore-style — see DESIGN.md §2.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import List, Sequence, Tuple

from repro.errors import CircuitError, RegistrationError
from repro.zksnark.circuit import ConstraintSystem, LinearCombination
from repro.zksnark.gadgets.arithmetic import conditional_select
from repro.zksnark.gadgets.mimc import MiMCParameters, mimc_hash, mimc_hash_native


@lru_cache(maxsize=None)
def _empty_subtree_roots(depth: int, params: MiMCParameters) -> Tuple[int, ...]:
    """Roots of all-empty subtrees per level (level 0 = leaves)."""
    roots = [0]
    for _ in range(depth):
        roots.append(mimc_hash_native([roots[-1], roots[-1]], params))
    return tuple(roots)


@dataclass(frozen=True)
class MerklePath:
    """A membership proof: leaf index plus one sibling per level."""

    leaf_index: int
    siblings: Tuple[int, ...]

    @property
    def depth(self) -> int:
        return len(self.siblings)


class MerkleTree:
    """A fixed-depth append-only MiMC Merkle tree.

    Leaves default to 0; appending re-hashes one path, so inserts are
    O(depth).  The tree keeps all filled nodes in dicts keyed by
    (level, index).
    """

    def __init__(self, depth: int, params: MiMCParameters) -> None:
        if depth < 1:
            raise ValueError("tree depth must be >= 1")
        self.depth = depth
        self.params = params
        self._nodes: dict[Tuple[int, int], int] = {}
        self._next_index = 0
        self._empty = _empty_subtree_roots(depth, params)

    @property
    def capacity(self) -> int:
        return 1 << self.depth

    @property
    def size(self) -> int:
        return self._next_index

    def _node(self, level: int, index: int) -> int:
        return self._nodes.get((level, index), self._empty[level])

    @property
    def root(self) -> int:
        return self._node(self.depth, 0)

    def append(self, leaf: int) -> int:
        """Insert a leaf; returns its index."""
        if self._next_index >= self.capacity:
            raise RegistrationError("registration tree is full")
        index = self._next_index
        self._next_index += 1
        self._nodes[(0, index)] = leaf
        node_index = index
        for level in range(self.depth):
            node_index //= 2
            left = self._node(level, 2 * node_index)
            right = self._node(level, 2 * node_index + 1)
            self._nodes[(level + 1, node_index)] = mimc_hash_native(
                [left, right], self.params
            )
        return index

    def leaf(self, index: int) -> int:
        return self._node(0, index)

    def path(self, leaf_index: int) -> MerklePath:
        """The membership path for a (filled or empty) leaf slot."""
        if not 0 <= leaf_index < self.capacity:
            raise IndexError("leaf index out of range")
        siblings: List[int] = []
        node_index = leaf_index
        for level in range(self.depth):
            siblings.append(self._node(level, node_index ^ 1))
            node_index //= 2
        return MerklePath(leaf_index=leaf_index, siblings=tuple(siblings))

    def verify_path(self, leaf: int, path: MerklePath, root: int | None = None) -> bool:
        """Native path verification (used by tests and the RA)."""
        return (
            compute_root_native(leaf, path, self.params)
            == (self.root if root is None else root)
        )


def compute_root_native(leaf: int, path: MerklePath, params: MiMCParameters) -> int:
    """Fold a membership path into the implied root."""
    state = leaf
    index = path.leaf_index
    for sibling in path.siblings:
        if index & 1:
            state = mimc_hash_native([sibling, state], params)
        else:
            state = mimc_hash_native([state, sibling], params)
        index >>= 1
    return state


def merkle_root_gadget(
    cs: ConstraintSystem,
    leaf: LinearCombination,
    path: MerklePath,
    params: MiMCParameters,
) -> LinearCombination:
    """Compute the root implied by ``leaf`` and a witnessed ``path``.

    Path bits and siblings enter as private wires; callers enforce the
    returned root equals the public registration root.
    """
    state = cs.coerce(leaf)
    index = path.leaf_index
    for level, sibling_value in enumerate(path.siblings):
        bit = cs.alloc((index >> level) & 1)
        cs.enforce_boolean(bit, annotation=f"merkle path bit {level}")
        sibling = cs.alloc(sibling_value).lc()
        left = conditional_select(cs, bit, sibling, state)
        right = conditional_select(cs, bit, state, sibling)
        state = mimc_hash(cs, [left, right], params)
    return state
