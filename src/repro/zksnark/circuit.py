"""Gadget-friendly constraint-system builder.

:class:`ConstraintSystem` is used in "synthesize" style: circuit code
allocates wires with concrete values and records constraints as it
computes.  The same synthesis function therefore produces both the
constraint structure (for setup) and the witness (for proving) — the
structure must not depend on wire *values*, which every gadget in
:mod:`repro.zksnark.gadgets` respects.

Public (statement) wires must be allocated before any private wire so
that the Groth16 wire layout ``(1, publics..., aux...)`` holds without
re-indexing.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple, Union

from repro.errors import CircuitError
from repro.zksnark.field import FR, PrimeField
from repro.zksnark.r1cs import R1CS, R1CSConstraint, SparseLC


class Variable:
    """A wire in the constraint system, carrying its assigned value."""

    __slots__ = ("index", "value", "_cs")

    def __init__(self, index: int, value: int, cs: "ConstraintSystem") -> None:
        self.index = index
        self.value = value
        self._cs = cs

    def lc(self) -> "LinearCombination":
        return LinearCombination(self._cs, {self.index: 1})

    # Operator sugar delegates to LinearCombination.
    def __add__(self, other):
        return self.lc() + other

    __radd__ = __add__

    def __sub__(self, other):
        return self.lc() - other

    def __rsub__(self, other):
        return (-1 * self.lc()) + other

    def __mul__(self, scalar: int):
        return self.lc() * scalar

    __rmul__ = __mul__

    def __neg__(self):
        return self.lc() * -1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Var({self.index}={self.value})"


LCLike = Union["LinearCombination", Variable, int]


class LinearCombination:
    """A sparse linear combination of wires, with its evaluated value."""

    __slots__ = ("_cs", "terms")

    def __init__(self, cs: "ConstraintSystem", terms: Dict[int, int]) -> None:
        self._cs = cs
        p = cs.field.modulus
        reduced: Dict[int, int] = {}
        for i, c in terms.items():
            c %= p
            if c:
                reduced[i] = c
        self.terms = reduced

    @property
    def value(self) -> int:
        assignment = self._cs.assignment
        p = self._cs.field.modulus
        return sum(c * assignment[i] for i, c in self.terms.items()) % p

    def _coerce(self, other: LCLike) -> "LinearCombination":
        return self._cs.coerce(other)

    def __add__(self, other: LCLike) -> "LinearCombination":
        rhs = self._coerce(other)
        merged = dict(self.terms)
        for i, c in rhs.terms.items():
            merged[i] = merged.get(i, 0) + c
        return LinearCombination(self._cs, merged)

    __radd__ = __add__

    def __sub__(self, other: LCLike) -> "LinearCombination":
        return self + (self._coerce(other) * -1)

    def __rsub__(self, other: LCLike) -> "LinearCombination":
        return self._coerce(other) - self

    def __mul__(self, scalar: int) -> "LinearCombination":
        if not isinstance(scalar, int):
            raise TypeError("linear combinations scale by int constants only")
        return LinearCombination(self._cs, {i: c * scalar for i, c in self.terms.items()})

    __rmul__ = __mul__

    def __neg__(self) -> "LinearCombination":
        return self * -1

    def sparse(self) -> SparseLC:
        return dict(self.terms)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"LC({self.terms})"


class ConstraintSystem:
    """A growable R1CS with live witness values.

    Wire 0 is the constant 1.  ``alloc_public`` wires form the SNARK
    statement (in allocation order); ``alloc`` wires are private.
    """

    def __init__(self, field: PrimeField = FR) -> None:
        self.field = field
        self.assignment: List[int] = [1]
        self.num_public = 0
        self.constraints: List[R1CSConstraint] = []
        self._sealed_public = False

    # ----- wire allocation -------------------------------------------------

    @property
    def one(self) -> LinearCombination:
        return LinearCombination(self, {0: 1})

    def alloc_public(self, value: int) -> Variable:
        """Allocate a statement wire; must precede all private wires."""
        if self._sealed_public:
            raise CircuitError("public wires must be allocated before private wires")
        var = Variable(len(self.assignment), value % self.field.modulus, self)
        self.assignment.append(var.value)
        self.num_public += 1
        return var

    def alloc(self, value: int) -> Variable:
        """Allocate a private (auxiliary) wire with the given value."""
        self._sealed_public = True
        var = Variable(len(self.assignment), value % self.field.modulus, self)
        self.assignment.append(var.value)
        return var

    def constant(self, value: int) -> LinearCombination:
        return LinearCombination(self, {0: value})

    def coerce(self, value: LCLike) -> LinearCombination:
        if isinstance(value, LinearCombination):
            if value._cs is not self:
                raise CircuitError("linear combination belongs to another system")
            return value
        if isinstance(value, Variable):
            if value._cs is not self:
                raise CircuitError("variable belongs to another system")
            return value.lc()
        if isinstance(value, int):
            return self.constant(value)
        raise TypeError(f"cannot use {type(value).__name__} in a constraint")

    # ----- constraints -----------------------------------------------------

    def enforce(self, a: LCLike, b: LCLike, c: LCLike, annotation: str = "") -> None:
        """Record the constraint a * b = c."""
        lc_a = self.coerce(a)
        lc_b = self.coerce(b)
        lc_c = self.coerce(c)
        # LinearCombination term dicts are persistent (every operation
        # builds a fresh dict), so the constraint can share them without
        # the defensive copy sparse() makes for external callers.
        self.constraints.append(
            R1CSConstraint(lc_a.terms, lc_b.terms, lc_c.terms, annotation)
        )

    def enforce_equal(self, a: LCLike, b: LCLike, annotation: str = "") -> None:
        """Record the linear constraint a = b (as a * 1 = b)."""
        self.enforce(a, self.one, b, annotation or "equality")

    def enforce_zero(self, a: LCLike, annotation: str = "") -> None:
        self.enforce(a, self.one, self.constant(0), annotation or "zero")

    def enforce_boolean(self, a: LCLike, annotation: str = "") -> None:
        """Record a * (a - 1) = 0, i.e. a is a bit."""
        lc = self.coerce(a)
        self.enforce(lc, lc - 1, self.constant(0), annotation or "boolean")

    # ----- derived allocation helpers (compute + constrain) ----------------

    def mul(self, a: LCLike, b: LCLike, annotation: str = "") -> Variable:
        """Allocate c := a*b with the constraint a*b=c."""
        lc_a = self.coerce(a)
        lc_b = self.coerce(b)
        product = self.alloc(lc_a.value * lc_b.value % self.field.modulus)
        # Build the constraint directly instead of round-tripping the
        # product wire through enforce()'s coercion — this is the single
        # hottest call in gadget synthesis (4 per MiMC round).
        self.constraints.append(
            R1CSConstraint(lc_a.terms, lc_b.terms, {product.index: 1}, annotation or "mul")
        )
        return product

    def square(self, a: LCLike, annotation: str = "") -> Variable:
        lc_a = self.coerce(a)
        return self.mul(lc_a, lc_a, annotation or "square")

    def inverse(self, a: LCLike, annotation: str = "") -> Variable:
        """Allocate inv := a^-1 with a * inv = 1; requires a != 0."""
        lc_a = self.coerce(a)
        inv = self.alloc(self.field.inv(lc_a.value))
        self.enforce(lc_a, inv, self.one, annotation or "inverse")
        return inv

    def div(self, a: LCLike, b: LCLike, annotation: str = "") -> Variable:
        """Allocate q := a/b with q * b = a; requires b != 0."""
        lc_a = self.coerce(a)
        lc_b = self.coerce(b)
        q = self.alloc(self.field.div(lc_a.value, lc_b.value))
        self.enforce(q, lc_b, lc_a, annotation or "div")
        return q

    # ----- export -----------------------------------------------------------

    @property
    def num_constraints(self) -> int:
        return len(self.constraints)

    def public_values(self) -> List[int]:
        """Statement wire values, in allocation order (without the 1)."""
        return list(self.assignment[1 : 1 + self.num_public])

    def to_r1cs(self) -> R1CS:
        system = R1CS(
            field=self.field,
            num_public=self.num_public,
            num_wires=len(self.assignment),
            constraints=list(self.constraints),
        )
        return system

    def check_satisfied(self) -> None:
        """Assert the current witness satisfies every recorded constraint."""
        self.to_r1cs().check_satisfied(self.assignment)
