"""Dense univariate polynomial arithmetic over a prime field.

Coefficients are plain ints (low index = constant term).  The QAP layer
relies on interpolation, multiplication and exact division by the
vanishing polynomial; no FFT is used, so everything here is O(n^2) —
adequate for the circuit sizes this reproduction targets and documented
as such in DESIGN.md.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.zksnark.field import PrimeField


def trim(coeffs: Sequence[int]) -> List[int]:
    """Drop trailing zero coefficients (canonical representation)."""
    out = list(coeffs)
    while out and out[-1] == 0:
        out.pop()
    return out


def poly_add(field: PrimeField, a: Sequence[int], b: Sequence[int]) -> List[int]:
    p = field.modulus
    n = max(len(a), len(b))
    out = [0] * n
    for i, c in enumerate(a):
        out[i] = c
    for i, c in enumerate(b):
        out[i] = (out[i] + c) % p
    return trim(out)


def poly_sub(field: PrimeField, a: Sequence[int], b: Sequence[int]) -> List[int]:
    p = field.modulus
    n = max(len(a), len(b))
    out = [0] * n
    for i, c in enumerate(a):
        out[i] = c
    for i, c in enumerate(b):
        out[i] = (out[i] - c) % p
    return trim(out)


def poly_scale(field: PrimeField, a: Sequence[int], k: int) -> List[int]:
    p = field.modulus
    return trim([(c * k) % p for c in a])


def poly_mul(field: PrimeField, a: Sequence[int], b: Sequence[int]) -> List[int]:
    if not a or not b:
        return []
    p = field.modulus
    out = [0] * (len(a) + len(b) - 1)
    for i, ca in enumerate(a):
        if ca == 0:
            continue
        for j, cb in enumerate(b):
            out[i + j] += ca * cb
    return trim([c % p for c in out])


def poly_eval(field: PrimeField, coeffs: Sequence[int], x: int) -> int:
    """Horner evaluation of the polynomial at ``x``."""
    p = field.modulus
    acc = 0
    for c in reversed(coeffs):
        acc = (acc * x + c) % p
    return acc


def poly_divmod(
    field: PrimeField, numerator: Sequence[int], denominator: Sequence[int]
) -> tuple[List[int], List[int]]:
    """Polynomial long division; returns (quotient, remainder)."""
    den = trim(denominator)
    if not den:
        raise ZeroDivisionError("polynomial division by zero")
    p = field.modulus
    num = [c % p for c in trim(numerator)]
    quot = [0] * max(0, len(num) - len(den) + 1)
    inv_lead = field.inv(den[-1])
    while len(num) >= len(den):
        shift = len(num) - len(den)
        factor = (num[-1] * inv_lead) % p
        quot[shift] = factor
        for i, c in enumerate(den):
            num[shift + i] = (num[shift + i] - factor * c) % p
        num = trim(num)
        if not num:
            break
    return trim(quot), num


def vanishing_polynomial(field: PrimeField, points: Sequence[int]) -> List[int]:
    """Z(x) = prod_j (x - points[j])."""
    p = field.modulus
    z = [1]
    for pt in points:
        z = poly_mul(field, z, [(-pt) % p, 1])
    return z


def lagrange_interpolate(
    field: PrimeField, points: Sequence[int], values: Sequence[int]
) -> List[int]:
    """Interpolate the unique degree-<n polynomial through (points, values).

    Uses the barycentric-ish construction: build Z(x), then each basis
    polynomial is Z(x)/(x - x_j) scaled by 1/Z'(x_j).  O(n^2) total.
    """
    if len(points) != len(values):
        raise ValueError("points/values length mismatch")
    if len(set(points)) != len(points):
        raise ValueError("interpolation points must be distinct")
    p = field.modulus
    n = len(points)
    if n == 0:
        return []
    z = vanishing_polynomial(field, points)
    result = [0] * n
    for j in range(n):
        if values[j] == 0:
            continue
        # basis_j = Z(x) / (x - x_j), computed by synthetic division.
        basis = _divide_by_linear(field, z, points[j])
        denom = poly_eval(field, basis, points[j])  # = Z'(x_j)
        scale = (values[j] * field.inv(denom)) % p
        for i, c in enumerate(basis):
            result[i] = (result[i] + c * scale) % p
    return trim(result)


def _divide_by_linear(field: PrimeField, coeffs: Sequence[int], root: int) -> List[int]:
    """Exact synthetic division of ``coeffs`` by (x - root)."""
    p = field.modulus
    out = [0] * (len(coeffs) - 1)
    carry = 0
    for i in range(len(coeffs) - 1, 0, -1):
        carry = (coeffs[i] + carry * root) % p
        out[i - 1] = carry
    return out


def lagrange_basis_at(
    field: PrimeField, points: Sequence[int], x: int
) -> List[int]:
    """Evaluate every Lagrange basis polynomial L_j at a single point x.

    Returns [L_0(x), ..., L_{n-1}(x)] in O(n^2); used by the trusted
    setup to evaluate the QAP column polynomials at the toxic tau.
    """
    p = field.modulus
    n = len(points)
    out = []
    for j in range(n):
        num = 1
        den = 1
        xj = points[j]
        for k in range(n):
            if k == j:
                continue
            num = (num * (x - points[k])) % p
            den = (den * (xj - points[k])) % p
        out.append((num * field.inv(den)) % p)
    return out
