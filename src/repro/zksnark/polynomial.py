"""Dense univariate polynomial arithmetic over a prime field.

Coefficients are plain ints (low index = constant term).  The QAP layer
relies on interpolation, multiplication and exact division by the
vanishing polynomial.  No FFT is used, but multiplication switches to
Karatsuba above a small threshold and the vanishing polynomial is built
as a balanced product tree, which together keep the prover's polynomial
work subquadratic for the circuit sizes this reproduction targets (see
DESIGN.md).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.zksnark.field import PrimeField


def trim(coeffs: Sequence[int]) -> List[int]:
    """Drop trailing zero coefficients (canonical representation)."""
    out = list(coeffs)
    while out and out[-1] == 0:
        out.pop()
    return out


def poly_add(field: PrimeField, a: Sequence[int], b: Sequence[int]) -> List[int]:
    p = field.modulus
    n = max(len(a), len(b))
    out = [0] * n
    for i, c in enumerate(a):
        out[i] = c
    for i, c in enumerate(b):
        out[i] = (out[i] + c) % p
    return trim(out)


def poly_sub(field: PrimeField, a: Sequence[int], b: Sequence[int]) -> List[int]:
    p = field.modulus
    n = max(len(a), len(b))
    out = [0] * n
    for i, c in enumerate(a):
        out[i] = c
    for i, c in enumerate(b):
        out[i] = (out[i] - c) % p
    return trim(out)


def poly_scale(field: PrimeField, a: Sequence[int], k: int) -> List[int]:
    p = field.modulus
    return trim([(c * k) % p for c in a])


#: Below this size schoolbook multiplication beats Karatsuba's overhead.
_KARATSUBA_THRESHOLD = 32


def _mul_schoolbook(a: Sequence[int], b: Sequence[int]) -> List[int]:
    out = [0] * (len(a) + len(b) - 1)
    for i, ca in enumerate(a):
        if ca == 0:
            continue
        for j, cb in enumerate(b):
            out[i + j] += ca * cb
    return out


def _mul_karatsuba(a: Sequence[int], b: Sequence[int]) -> List[int]:
    """Unreduced product over the integers, O(n^1.585).

    Working with raw ints and reducing once at the end is safe: python
    ints are arbitrary precision, and the single final ``% p`` pass is
    cheaper than reducing at every level.
    """
    n = min(len(a), len(b))
    if n <= _KARATSUBA_THRESHOLD:
        return _mul_schoolbook(a, b)
    half = (max(len(a), len(b)) + 1) // 2
    a_lo, a_hi = a[:half], a[half:]
    b_lo, b_hi = b[:half], b[half:]
    lo = _mul_karatsuba(a_lo, b_lo) if a_lo and b_lo else []
    hi = _mul_karatsuba(a_hi, b_hi) if a_hi and b_hi else []
    a_sum = [x + y for x, y in zip(a_lo, a_hi)] + list(
        a_lo[len(a_hi):] or a_hi[len(a_lo):]
    )
    b_sum = [x + y for x, y in zip(b_lo, b_hi)] + list(
        b_lo[len(b_hi):] or b_hi[len(b_lo):]
    )
    mid = _mul_karatsuba(a_sum, b_sum) if a_sum and b_sum else []
    out = [0] * (len(a) + len(b) - 1)
    for i, c in enumerate(lo):
        out[i] += c
    for i, c in enumerate(hi):
        out[i + 2 * half] += c
    # (mid - lo - hi) = a_lo·b_hi + a_hi·b_lo lands at the half offset.
    # Combine before placing: mid's top coefficients cancel against
    # lo/hi and may individually exceed the output degree.
    width = max(len(mid), len(lo), len(hi))
    diff = list(mid) + [0] * (width - len(mid))
    for i, c in enumerate(lo):
        diff[i] -= c
    for i, c in enumerate(hi):
        diff[i] -= c
    for i, c in enumerate(diff):
        if c:
            out[i + half] += c
    return out


def poly_mul(field: PrimeField, a: Sequence[int], b: Sequence[int]) -> List[int]:
    if not a or not b:
        return []
    p = field.modulus
    if min(len(a), len(b)) <= _KARATSUBA_THRESHOLD:
        out = _mul_schoolbook(a, b)
    else:
        out = _mul_karatsuba(list(a), list(b))
    return trim([c % p for c in out])


def poly_eval(field: PrimeField, coeffs: Sequence[int], x: int) -> int:
    """Horner evaluation of the polynomial at ``x``."""
    p = field.modulus
    acc = 0
    for c in reversed(coeffs):
        acc = (acc * x + c) % p
    return acc


def poly_divmod(
    field: PrimeField, numerator: Sequence[int], denominator: Sequence[int]
) -> tuple[List[int], List[int]]:
    """Polynomial long division; returns (quotient, remainder)."""
    den = trim(denominator)
    if not den:
        raise ZeroDivisionError("polynomial division by zero")
    p = field.modulus
    num = [c % p for c in trim(numerator)]
    quot = [0] * max(0, len(num) - len(den) + 1)
    inv_lead = field.inv(den[-1])
    while len(num) >= len(den):
        shift = len(num) - len(den)
        factor = (num[-1] * inv_lead) % p
        quot[shift] = factor
        for i, c in enumerate(den):
            num[shift + i] = (num[shift + i] - factor * c) % p
        num = trim(num)
        if not num:
            break
    return trim(quot), num


def vanishing_polynomial(field: PrimeField, points: Sequence[int]) -> List[int]:
    """Z(x) = prod_j (x - points[j]).

    Built as a balanced product tree so the big multiplications at the
    top of the tree run through Karatsuba, instead of the O(n^2) cost of
    multiplying one linear factor at a time.
    """
    p = field.modulus
    if not points:
        return [1]
    leaves: List[List[int]] = [[(-pt) % p, 1] for pt in points]
    while len(leaves) > 1:
        paired = [
            poly_mul(field, leaves[i], leaves[i + 1])
            for i in range(0, len(leaves) - 1, 2)
        ]
        if len(leaves) % 2:
            paired.append(leaves[-1])
        leaves = paired
    return leaves[0]


#: Domain-keyed cache of normalized Lagrange basis rows.  The QAP
#: prover interpolates three vectors per proof over the SAME fixed
#: domain [1..n]; rebuilding Z(x) and running n synthetic divisions on
#: every call dominated prove time (~42% in profile), while the rows
#: themselves only depend on (modulus, points).
_INTERP_CACHE: dict = {}
_INTERP_CACHE_MAX = 8


def _interpolation_rows(field: PrimeField, points: Sequence[int]) -> List[List[int]]:
    """Rows ``basis_j(x) / Z'(x_j)`` for every x_j, cached per domain."""
    key = (field.modulus, tuple(points))
    rows = _INTERP_CACHE.get(key)
    if rows is None:
        p = field.modulus
        z = vanishing_polynomial(field, points)
        rows = []
        for xj in points:
            # basis_j = Z(x) / (x - x_j), computed by synthetic division.
            basis = _divide_by_linear(field, z, xj)
            inv_denom = field.inv(poly_eval(field, basis, xj))  # 1 / Z'(x_j)
            rows.append([c * inv_denom % p for c in basis])
        if len(_INTERP_CACHE) >= _INTERP_CACHE_MAX:
            _INTERP_CACHE.pop(next(iter(_INTERP_CACHE)))
        _INTERP_CACHE[key] = rows
    return rows


def lagrange_interpolate(
    field: PrimeField, points: Sequence[int], values: Sequence[int]
) -> List[int]:
    """Interpolate the unique degree-<n polynomial through (points, values).

    Uses the barycentric-ish construction: build Z(x), then each basis
    polynomial is Z(x)/(x - x_j) scaled by 1/Z'(x_j).  O(n^2) total,
    with the normalized basis rows cached per domain and the row
    combination accumulated as raw ints (one ``% p`` pass at the end).
    """
    if len(points) != len(values):
        raise ValueError("points/values length mismatch")
    if len(set(points)) != len(points):
        raise ValueError("interpolation points must be distinct")
    p = field.modulus
    n = len(points)
    if n == 0:
        return []
    rows = _interpolation_rows(field, points)
    result = [0] * n
    for j in range(n):
        v = values[j] % p
        if v == 0:
            continue
        row = rows[j]
        for i in range(n):
            result[i] += v * row[i]
    return trim([c % p for c in result])


def _divide_by_linear(field: PrimeField, coeffs: Sequence[int], root: int) -> List[int]:
    """Exact synthetic division of ``coeffs`` by (x - root)."""
    p = field.modulus
    out = [0] * (len(coeffs) - 1)
    carry = 0
    for i in range(len(coeffs) - 1, 0, -1):
        carry = (coeffs[i] + carry * root) % p
        out[i - 1] = carry
    return out


def lagrange_basis_at(
    field: PrimeField, points: Sequence[int], x: int
) -> List[int]:
    """Evaluate every Lagrange basis polynomial L_j at a single point x.

    Returns [L_0(x), ..., L_{n-1}(x)] in O(n^2); used by the trusted
    setup to evaluate the QAP column polynomials at the toxic tau.
    """
    p = field.modulus
    n = len(points)
    out = []
    for j in range(n):
        num = 1
        den = 1
        xj = points[j]
        for k in range(n):
            if k == j:
                continue
            num = (num * (x - points[k])) % p
            den = (den * (xj - points[k])) % p
        out.append((num * field.inv(den)) % p)
    return out
