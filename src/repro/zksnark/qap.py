"""R1CS → Quadratic Arithmetic Program reduction.

Constraint j is associated with the domain point ``d_j = j+1``; the QAP
column polynomials A_i, B_i, C_i interpolate each wire's coefficients
over the domain, and an assignment ``w`` satisfies the R1CS iff
``A(x)·B(x) − C(x)`` is divisible by ``Z(x) = Π (x − d_j)`` where
``A(x) = Σ w_i A_i(x)`` etc.  The trusted setup only needs the columns
*evaluated at τ* (computed via Lagrange basis values, never
materialising full polynomials), while the prover materialises the three
aggregated polynomials to compute the quotient H(x).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.errors import UnsatisfiedConstraintError
from repro.zksnark import polynomial as poly
from repro.zksnark.field import PrimeField
from repro.zksnark.r1cs import R1CS


@dataclass
class QAPEvaluation:
    """QAP column polynomials evaluated at a single point tau.

    ``a_at[i]``, ``b_at[i]``, ``c_at[i]`` give A_i(tau) etc. for every
    wire i (including wire 0); ``z_at`` is Z(tau); ``degree`` is the
    domain size n.
    """

    a_at: List[int]
    b_at: List[int]
    c_at: List[int]
    z_at: int
    degree: int


class QAP:
    """The QAP view of an R1CS instance."""

    def __init__(self, r1cs: R1CS) -> None:
        if r1cs.num_constraints == 0:
            raise ValueError("cannot build a QAP from an empty constraint system")
        self.r1cs = r1cs
        self.field: PrimeField = r1cs.field
        self.domain: List[int] = [j + 1 for j in range(r1cs.num_constraints)]

    @property
    def degree(self) -> int:
        return len(self.domain)

    def evaluate_at(self, tau: int) -> QAPEvaluation:
        """Evaluate every column polynomial at ``tau`` (trusted setup)."""
        field = self.field
        p = field.modulus
        basis = poly.lagrange_basis_at(field, self.domain, tau)
        wires = self.r1cs.num_wires
        a_at = [0] * wires
        b_at = [0] * wires
        c_at = [0] * wires
        for j, cons in enumerate(self.r1cs.constraints):
            lj = basis[j]
            if lj == 0:
                continue
            for i, coeff in cons.a.items():
                a_at[i] = (a_at[i] + coeff * lj) % p
            for i, coeff in cons.b.items():
                b_at[i] = (b_at[i] + coeff * lj) % p
            for i, coeff in cons.c.items():
                c_at[i] = (c_at[i] + coeff * lj) % p
        z_at = 1
        for d in self.domain:
            z_at = z_at * (tau - d) % p
        return QAPEvaluation(a_at=a_at, b_at=b_at, c_at=c_at, z_at=z_at, degree=self.degree)

    def _aggregate_evaluations(self, assignment: Sequence[int]) -> tuple[list, list, list]:
        """Evaluate the aggregated A, B, C polynomials over the domain.

        Because the domain point d_j belongs to constraint j, the value
        of the aggregate polynomial at d_j is just the constraint row
        dotted with the assignment — O(nnz) overall.
        """
        p = self.field.modulus
        a_evals, b_evals, c_evals = [], [], []
        for cons in self.r1cs.constraints:
            a_evals.append(sum(c * assignment[i] for i, c in cons.a.items()) % p)
            b_evals.append(sum(c * assignment[i] for i, c in cons.b.items()) % p)
            c_evals.append(sum(c * assignment[i] for i, c in cons.c.items()) % p)
        return a_evals, b_evals, c_evals

    def witness_quotient(self, assignment: Sequence[int]) -> List[int]:
        """Compute the coefficients of H(x) = (A·B − C)(x) / Z(x).

        Raises :class:`UnsatisfiedConstraintError` if the division is not
        exact, i.e. the assignment does not satisfy the R1CS.
        """
        field = self.field
        a_evals, b_evals, c_evals = self._aggregate_evaluations(assignment)
        a_poly = poly.lagrange_interpolate(field, self.domain, a_evals)
        b_poly = poly.lagrange_interpolate(field, self.domain, b_evals)
        c_poly = poly.lagrange_interpolate(field, self.domain, c_evals)
        product = poly.poly_mul(field, a_poly, b_poly)
        numerator = poly.poly_sub(field, product, c_poly)
        z = poly.vanishing_polynomial(field, self.domain)
        quotient, remainder = poly.poly_divmod(field, numerator, z)
        if remainder:
            raise UnsatisfiedConstraintError(
                "A*B - C is not divisible by Z: assignment does not satisfy the R1CS"
            )
        return quotient
