"""Groth16-style preprocessing zk-SNARK over BN128.

The trusted setup samples toxic waste (τ, α, β, γ, δ), evaluates the QAP
columns at τ and publishes group-encoded key material; proofs are the
classic three group elements (A ∈ G1, B ∈ G2, C ∈ G1); verification is
one multi-pairing plus a statement-dependent MSM — exactly the
asymmetric cost profile the paper exploits with its outsource-then-prove
methodology (heavy proving off-chain, tiny verification on-chain).

Performance layer (all pure Python, no extra dependencies):

- setup's thousands of generator multiplications go through windowed
  fixed-base tables (:func:`g1_generator_table`);
- the prover's five inner products run as Pippenger MSMs (G1 and G2);
- the verifier pairs against *prepared* γ/δ (precomputed Miller-loop
  line coefficients) and uses the decomposed final exponentiation;
- :meth:`Groth16Backend.batch_verify` checks n proofs with a single
  random-linear-combination multi-pairing;
- ``jobs > 1`` optionally fans setup/prove out over ``multiprocessing``
  (fork-based; silently serial where fork is unavailable).

``Groth16Backend(optimized=False)`` routes every group operation
through the naive reference implementations — the before/after axis of
``benchmarks/bench_fig4.py``.
"""

from __future__ import annotations

import os
import secrets
from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence

from repro import observability as obs
from repro.crypto.hashing import sha256
from repro.errors import ProofError
from repro.zksnark.backend import (
    BatchProveJob,
    CircuitDefinition,
    KeyPair,
    Proof,
    ProvingBackend,
    fanout_map,
    full_circuit_digest,
)
from repro.zksnark.bn128.curve import (
    G1,
    G2,
    G1Point,
    G2Point,
    g1_add,
    g1_from_bytes,
    g1_generator_table,
    g1_msm,
    g1_msm_naive,
    g1_mul,
    g1_neg,
    g1_to_bytes,
    g2_add,
    g2_from_bytes,
    g2_generator_table,
    g2_msm,
    g2_mul,
    g2_mul_naive,
    g2_to_bytes,
)
from repro.zksnark.bn128.fq import CURVE_ORDER
from repro.zksnark.bn128.fq12 import FQ12
from repro.zksnark.bn128.pairing import (
    G2Prepared,
    multi_pairing,
    multi_pairing_naive,
    pairing,
    prepare_g2,
)
from repro.zksnark.qap import QAP


class _Drbg:
    """A tiny SHA-256 counter DRBG for reproducible trusted setups."""

    def __init__(self, seed: bytes) -> None:
        self._seed = seed
        self._counter = 0

    def field_element(self) -> int:
        """A uniform nonzero scalar in [1, r)."""
        while True:
            block = sha256(self._seed, b"drbg", self._counter.to_bytes(8, "big"))
            block += sha256(self._seed, b"drbg2", self._counter.to_bytes(8, "big"))
            self._counter += 1
            value = int.from_bytes(block, "big") % CURVE_ORDER
            if value != 0:
                return value


@dataclass
class Groth16VerifyingKey:
    """Verification material: 4 group elements + one IC point per input."""

    circuit_digest: bytes
    num_public: int
    alpha_g1: G1Point
    beta_g2: G2Point
    gamma_g2: G2Point
    delta_g2: G2Point
    ic: List[G1Point]
    alpha_beta: FQ12  # precomputed e(alpha, beta)
    #: Prepared Miller-loop line coefficients for the two fixed G2
    #: points every verification pairs against (filled lazily).
    gamma_prepared: Optional[G2Prepared] = field(default=None, repr=False, compare=False)
    delta_prepared: Optional[G2Prepared] = field(default=None, repr=False, compare=False)

    def prepared_gamma(self) -> G2Prepared:
        if self.gamma_prepared is None:
            self.gamma_prepared = prepare_g2(self.gamma_g2)
        return self.gamma_prepared

    def prepared_delta(self) -> G2Prepared:
        if self.delta_prepared is None:
            self.delta_prepared = prepare_g2(self.delta_g2)
        return self.delta_prepared

    def size_bytes(self) -> int:
        """Serialized size (what Table I's "Key" column measures)."""
        return len(self.to_bytes())

    def to_bytes(self) -> bytes:
        parts = [
            g1_to_bytes(self.alpha_g1),
            g2_to_bytes(self.beta_g2),
            g2_to_bytes(self.gamma_g2),
            g2_to_bytes(self.delta_g2),
        ]
        parts.extend(g1_to_bytes(point) for point in self.ic)
        return b"".join(parts)


@dataclass
class Groth16ProvingKey:
    """Proving material (per-wire queries plus the H-polynomial powers)."""

    circuit_digest: bytes
    num_public: int
    alpha_g1: G1Point
    beta_g1: G1Point
    beta_g2: G2Point
    delta_g1: G1Point
    delta_g2: G2Point
    a_query: List[G1Point]
    b_g1_query: List[G1Point]
    b_g2_query: List[G2Point]
    k_query: List[G1Point]  # aux wires only, indexed from num_public+1
    h_query: List[G1Point]

    def size_bytes(self) -> int:
        g1_count = (
            3 + len(self.a_query) + len(self.b_g1_query) + len(self.k_query) + len(self.h_query)
        )
        g2_count = 2 + len(self.b_g2_query)
        return 64 * g1_count + 128 * g2_count


_PROOF_LEN = 64 + 128 + 64

#: Bit width of the batch-verification combination scalars; 2^-127
#: soundness error per forged proof in the batch.
_BATCH_SCALAR_BITS = 127


def _g1_generator_chunk(scalars: Sequence[int]) -> List[G1Point]:
    """Fixed-base G1 generator multiples for one fan-out chunk."""
    table = g1_generator_table()
    return [table.mul(s) for s in scalars]


def _g2_generator_chunk(scalars: Sequence[int]) -> List[G2Point]:
    """Fixed-base G2 generator multiples for one fan-out chunk."""
    table = g2_generator_table()
    return [table.mul(s) for s in scalars]


def _msm_task(task):
    """One prover MSM, shaped for ``multiprocessing`` map."""
    kind, points, scalars = task
    if kind == "g2":
        return g2_msm(points, scalars)
    return g1_msm(points, scalars)


# Shared with the mock backend; re-exported here for back-compat.
_ProveJob = BatchProveJob
_fanout_map = fanout_map


class Groth16Backend(ProvingBackend):
    """The real pairing-based backend.

    ``optimized=False`` switches every group/pairing operation to the
    naive reference path (double-and-add, per-wire G2 loop, monolithic
    final exponentiation) — kept so benchmarks can measure the speedup
    and tests can cross-check the two implementations.  ``jobs``
    (default: the ``REPRO_SNARK_JOBS`` env var, else 1) enables a
    multiprocessing fan-out for setup and the prover's MSMs.
    """

    name = "groth16"

    def __init__(self, optimized: bool = True, jobs: Optional[int] = None) -> None:
        self._optimized = optimized
        if jobs is None:
            jobs = int(os.environ.get("REPRO_SNARK_JOBS", "1") or 1)
        self._jobs = max(1, jobs)

    def setup(self, circuit: CircuitDefinition, seed: Optional[bytes] = None) -> KeyPair:
        with obs.span(
            "snark.setup",
            backend=self.name,
            circuit=circuit.name,
            optimized=self._optimized,
        ):
            keys = self._setup(circuit, seed)
        obs.count("snark.setup.calls")
        return keys

    def _setup(self, circuit: CircuitDefinition, seed: Optional[bytes]) -> KeyPair:
        if circuit.requires_ideal_backend:
            raise ProofError(
                f"circuit {circuit.name!r} declares native predicates that "
                "Groth16 cannot compile; use the mock backend"
            )
        cs = circuit.build(circuit.example_instance())
        cs.check_satisfied()
        r1cs = cs.to_r1cs()
        digest = full_circuit_digest(circuit, r1cs)
        qap = QAP(r1cs)
        drbg = _Drbg(seed if seed is not None else secrets.token_bytes(32))
        tau = drbg.field_element()
        alpha = drbg.field_element()
        beta = drbg.field_element()
        gamma = drbg.field_element()
        delta = drbg.field_element()

        evaluation = qap.evaluate_at(tau)
        p = CURVE_ORDER
        gamma_inv = pow(gamma, -1, p)
        delta_inv = pow(delta, -1, p)

        num_wires = r1cs.num_wires
        num_public = r1cs.num_public

        def combined(i: int) -> int:
            return (
                beta * evaluation.a_at[i]
                + alpha * evaluation.b_at[i]
                + evaluation.c_at[i]
            ) % p

        ic_scalars = [combined(i) * gamma_inv % p for i in range(num_public + 1)]
        k_scalars = [
            combined(i) * delta_inv % p for i in range(num_public + 1, num_wires)
        ]
        z_delta = evaluation.z_at * delta_inv % p
        h_scalars = []
        power = 1
        for _ in range(max(0, evaluation.degree - 1)):
            h_scalars.append(power * z_delta % p)
            power = power * tau % p

        if self._optimized:
            # Build the shared tables before any fork so children
            # inherit them instead of rebuilding.
            g1_table = g1_generator_table()
            g2_table = g2_generator_table()
            jobs = self._jobs

            def batch_g1(scalars: List[int]) -> List[G1Point]:
                if jobs > 1 and len(scalars) >= 64:
                    return _fanout_map(_g1_generator_chunk, scalars, jobs, chunked=True)
                return [g1_table.mul(s) for s in scalars]

            def batch_g2(scalars: List[int]) -> List[G2Point]:
                if jobs > 1 and len(scalars) >= 64:
                    return _fanout_map(_g2_generator_chunk, scalars, jobs, chunked=True)
                return [g2_table.mul(s) for s in scalars]

        else:

            def batch_g1(scalars: List[int]) -> List[G1Point]:
                return [g1_mul(G1, s) for s in scalars]

            def batch_g2(scalars: List[int]) -> List[G2Point]:
                return [g2_mul_naive(G2, s) for s in scalars]

        a_query = batch_g1(evaluation.a_at)
        b_g1_query = batch_g1(evaluation.b_at)
        b_g2_query = batch_g2(evaluation.b_at)
        ic = batch_g1(ic_scalars)
        k_query = batch_g1(k_scalars)
        h_query = batch_g1(h_scalars)

        (alpha_g1, beta_g1, delta_g1) = batch_g1([alpha, beta, delta])
        (beta_g2, gamma_g2, delta_g2) = batch_g2([beta, gamma, delta])
        proving_key = Groth16ProvingKey(
            circuit_digest=digest,
            num_public=num_public,
            alpha_g1=alpha_g1,
            beta_g1=beta_g1,
            beta_g2=beta_g2,
            delta_g1=delta_g1,
            delta_g2=delta_g2,
            a_query=a_query,
            b_g1_query=b_g1_query,
            b_g2_query=b_g2_query,
            k_query=k_query,
            h_query=h_query,
        )
        verifying_key = Groth16VerifyingKey(
            circuit_digest=digest,
            num_public=num_public,
            alpha_g1=alpha_g1,
            beta_g2=beta_g2,
            gamma_g2=gamma_g2,
            delta_g2=delta_g2,
            ic=ic,
            alpha_beta=pairing(beta_g2, alpha_g1),
        )
        if self._optimized:
            verifying_key.prepared_gamma()
            verifying_key.prepared_delta()
        return KeyPair(proving_key=proving_key, verifying_key=verifying_key)

    def prove(
        self,
        proving_key: Groth16ProvingKey,
        circuit: CircuitDefinition,
        instance: Any,
        rng: Optional[_Drbg] = None,
    ) -> Proof:
        with obs.span(
            "snark.prove",
            backend=self.name,
            circuit=circuit.name,
            optimized=self._optimized,
        ):
            proof = self._prove(proving_key, circuit, instance, rng)
        obs.count("snark.prove.calls")
        return proof

    def prove_many(self, requests) -> List[Proof]:
        """Prove independent jobs across the fork pool (``jobs > 1``).

        Each child proves serially (``jobs=1``) so the per-proof MSM
        fan-out and the per-job fan-out never nest pools.  Falls back
        to the serial base implementation wherever fork is unavailable.
        """
        if self._jobs <= 1 or len(requests) < 2:
            return super().prove_many(requests)
        with obs.span(
            "snark.prove_many", backend=self.name, jobs=len(requests)
        ):
            child = Groth16Backend(optimized=self._optimized, jobs=1)
            proofs = _fanout_map(
                _ProveJob(child), list(requests), self._jobs, chunked=False
            )
        obs.count("snark.prove_many.calls")
        obs.count("snark.prove_many.jobs", len(requests))
        return proofs

    def _prove(
        self,
        proving_key: Groth16ProvingKey,
        circuit: CircuitDefinition,
        instance: Any,
        rng: Optional[_Drbg],
    ) -> Proof:
        cs = circuit.build(instance)
        r1cs = cs.to_r1cs()
        if full_circuit_digest(circuit, r1cs) != proving_key.circuit_digest:
            raise ProofError("proving key does not match this circuit structure")
        r1cs.check_satisfied(cs.assignment)
        assignment = cs.assignment
        qap = QAP(r1cs)
        h_coeffs = qap.witness_quotient(assignment)

        num_wires = len(assignment)
        if not (
            len(proving_key.a_query) == num_wires
            and len(proving_key.b_g1_query) == num_wires
            and len(proving_key.b_g2_query) == num_wires
        ):
            raise ProofError(
                "proving key wire count does not match the witness: "
                f"{len(proving_key.a_query)} query points vs {num_wires} wires"
            )
        aux_values = assignment[proving_key.num_public + 1 :]
        if len(aux_values) != len(proving_key.k_query):
            raise ProofError(
                "proving key K-query length does not match the auxiliary witness"
            )
        if len(h_coeffs) > len(proving_key.h_query):
            raise ProofError(
                "quotient degree exceeds the proving key's H powers: "
                f"{len(h_coeffs)} coefficients vs {len(proving_key.h_query)} powers"
            )

        drbg = rng or _Drbg(secrets.token_bytes(32))
        blind_r = drbg.field_element()
        blind_s = drbg.field_element()
        p = CURVE_ORDER

        if self._optimized:
            tasks = [
                ("g1", proving_key.a_query, assignment),
                ("g1", proving_key.b_g1_query, assignment),
                ("g2", proving_key.b_g2_query, assignment),
                ("g1", proving_key.k_query, aux_values),
                ("g1", proving_key.h_query[: len(h_coeffs)], h_coeffs),
            ]
            a_acc, b1_acc, b2_acc, k_acc, h_acc = _fanout_map(
                _msm_task, tasks, self._jobs, chunked=False
            )
        else:
            a_acc = g1_msm_naive(proving_key.a_query, assignment)
            b1_acc = g1_msm_naive(proving_key.b_g1_query, assignment)
            b2_acc: G2Point = None
            for point, value in zip(proving_key.b_g2_query, assignment):
                if value == 0 or point is None:
                    continue
                b2_acc = g2_add(b2_acc, g2_mul_naive(point, value))
            k_acc = g1_msm_naive(proving_key.k_query, aux_values)
            h_acc = g1_msm_naive(proving_key.h_query[: len(h_coeffs)], h_coeffs)

        proof_a = g1_add(
            g1_add(proving_key.alpha_g1, a_acc), g1_mul(proving_key.delta_g1, blind_r)
        )
        proof_b_g1 = g1_add(
            g1_add(proving_key.beta_g1, b1_acc), g1_mul(proving_key.delta_g1, blind_s)
        )
        proof_b = g2_add(
            g2_add(proving_key.beta_g2, b2_acc), g2_mul(proving_key.delta_g2, blind_s)
        )

        proof_c = k_acc
        proof_c = g1_add(proof_c, h_acc)
        proof_c = g1_add(proof_c, g1_mul(proof_a, blind_s))
        proof_c = g1_add(proof_c, g1_mul(proof_b_g1, blind_r))
        proof_c = g1_add(proof_c, g1_neg(g1_mul(proving_key.delta_g1, blind_r * blind_s % p)))

        payload = g1_to_bytes(proof_a) + g2_to_bytes(proof_b) + g1_to_bytes(proof_c)
        return Proof(backend=self.name, payload=payload)

    def _decode_proof(self, proof: Proof):
        """Parse and validate a proof payload; None when malformed.

        Hardening beyond the curve checks in ``g*_from_bytes``: the
        all-zero (infinity) encodings are rejected for all three proof
        elements — A or B at infinity collapses e(A, B) to 1 and C at
        infinity is never produced by an honest prover.
        """
        if len(proof.payload) != _PROOF_LEN:
            return None
        try:
            proof_a = g1_from_bytes(proof.payload[:64])
            proof_b = g2_from_bytes(proof.payload[64:192])
            proof_c = g1_from_bytes(proof.payload[192:])
        except ValueError:
            return None
        if proof_a is None or proof_b is None or proof_c is None:
            return None
        return proof_a, proof_b, proof_c

    def verify(
        self,
        verifying_key: Groth16VerifyingKey,
        public_inputs: List[int],
        proof: Proof,
    ) -> bool:
        with obs.span(
            "snark.verify",
            backend=self.name,
            inputs=len(public_inputs),
            optimized=self._optimized,
        ) as verify_span:
            result = self._verify(verifying_key, public_inputs, proof)
            verify_span.set_attrs(valid=result)
        if obs.TRACER.enabled:
            obs.count("snark.verify.calls")
            if not result:
                obs.count("snark.verify.rejections")
        return result

    def _verify(
        self,
        verifying_key: Groth16VerifyingKey,
        public_inputs: List[int],
        proof: Proof,
    ) -> bool:
        self._check_backend(proof)
        if len(public_inputs) != verifying_key.num_public:
            return False
        decoded = self._decode_proof(proof)
        if decoded is None:
            return False
        proof_a, proof_b, proof_c = decoded
        ic_acc = verifying_key.ic[0]
        ic_points = verifying_key.ic[1:]
        inputs = [v % CURVE_ORDER for v in public_inputs]
        if self._optimized:
            ic_acc = g1_add(ic_acc, g1_msm(ic_points, inputs))
            lhs = multi_pairing(
                [
                    (proof_b, proof_a),
                    (verifying_key.prepared_gamma(), g1_neg(ic_acc)),
                    (verifying_key.prepared_delta(), g1_neg(proof_c)),
                ]
            )
        else:
            ic_acc = g1_add(ic_acc, g1_msm_naive(ic_points, inputs))
            lhs = multi_pairing_naive(
                [
                    (proof_b, proof_a),
                    (verifying_key.gamma_g2, g1_neg(ic_acc)),
                    (verifying_key.delta_g2, g1_neg(proof_c)),
                ]
            )
        return lhs == verifying_key.alpha_beta

    def batch_verify(
        self,
        verifying_key: Groth16VerifyingKey,
        statements: Sequence[List[int]],
        proofs: Sequence[Proof],
    ) -> bool:
        """Check n proofs with one random-linear-combination multi-pairing.

        Each proof i must satisfy
        ``e(A_i, B_i) = e(α, β) · e(IC_i, γ) · e(C_i, δ)``.  Raising the
        i-th equation to an independent uniform 127-bit power z_i and
        multiplying them together yields a single check

        ``Π e(z_i·A_i, B_i) · e(−Σ z_i·IC_i, γ) · e(−Σ z_i·C_i, δ)
          = e(α, β)^{Σ z_i}``

        with n+2 Miller loops and ONE final exponentiation instead of
        3n Miller loops and n exponentiations.  Soundness: if any single
        equation fails, the combined equation holds with probability at
        most 2^-127 over the verifier's choice of z (the standard
        small-exponent batching argument); z_0 is fixed to 1, which is
        harmless since the combination only needs pairwise-independent
        randomization of the *relative* weights.

        Returns False on any malformed proof; raises
        :class:`ProofError` when statements and proofs differ in length.
        """
        with obs.span(
            "snark.batch_verify", backend=self.name, proofs=len(proofs)
        ) as batch_span:
            result = self._batch_verify(verifying_key, statements, proofs)
            batch_span.set_attrs(valid=result)
        if obs.TRACER.enabled:
            obs.count("snark.batch_verify.calls")
            obs.count("snark.batch_verify.proofs", len(proofs))
        return result

    def _batch_verify(
        self,
        verifying_key: Groth16VerifyingKey,
        statements: Sequence[List[int]],
        proofs: Sequence[Proof],
    ) -> bool:
        if len(statements) != len(proofs):
            raise ProofError(
                f"batch length mismatch: {len(statements)} statements "
                f"vs {len(proofs)} proofs"
            )
        count = len(proofs)
        if count == 0:
            return True
        if count == 1:
            return self.verify(verifying_key, list(statements[0]), proofs[0])
        decoded = []
        for statement, proof in zip(statements, proofs):
            self._check_backend(proof)
            if len(statement) != verifying_key.num_public:
                return False
            parsed = self._decode_proof(proof)
            if parsed is None:
                return False
            decoded.append(parsed)

        weights = [1] + [
            secrets.randbits(_BATCH_SCALAR_BITS) + 1 for _ in range(count - 1)
        ]
        total_weight = sum(weights) % CURVE_ORDER

        # Σ_i z_i·IC_i collapses into ONE MSM over the vk's IC points:
        # the coefficient of ic[0] is Σ z_i and of ic[j] is Σ z_i·x_ij.
        ic_coeffs = [total_weight]
        for j in range(verifying_key.num_public):
            acc = 0
            for statement, z in zip(statements, weights):
                acc += z * (statement[j] % CURVE_ORDER)
            ic_coeffs.append(acc % CURVE_ORDER)
        ic_acc = g1_msm(verifying_key.ic, ic_coeffs)
        c_acc = g1_msm([c for (_, _, c) in decoded], weights)

        pairs = [
            (proof_b, g1_mul(proof_a, z))
            for (proof_a, proof_b, _), z in zip(decoded, weights)
        ]
        pairs.append((verifying_key.prepared_gamma(), g1_neg(ic_acc)))
        pairs.append((verifying_key.prepared_delta(), g1_neg(c_acc)))
        return multi_pairing(pairs) == verifying_key.alpha_beta ** total_weight
