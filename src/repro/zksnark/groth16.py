"""Groth16-style preprocessing zk-SNARK over BN128.

The trusted setup samples toxic waste (τ, α, β, γ, δ), evaluates the QAP
columns at τ and publishes group-encoded key material; proofs are the
classic three group elements (A ∈ G1, B ∈ G2, C ∈ G1); verification is
one multi-pairing plus a statement-dependent MSM — exactly the
asymmetric cost profile the paper exploits with its outsource-then-prove
methodology (heavy proving off-chain, tiny verification on-chain).
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass
from typing import Any, List, Optional

from repro.crypto.hashing import sha256
from repro.errors import ProofError, UnsatisfiedConstraintError
from repro.zksnark.backend import (
    CircuitDefinition,
    KeyPair,
    Proof,
    ProvingBackend,
    full_circuit_digest,
)
from repro.zksnark.bn128.curve import (
    G1,
    G2,
    G1Point,
    G2Point,
    g1_add,
    g1_from_bytes,
    g1_msm,
    g1_mul,
    g1_neg,
    g1_to_bytes,
    g2_add,
    g2_from_bytes,
    g2_mul,
    g2_to_bytes,
)
from repro.zksnark.bn128.fq import CURVE_ORDER
from repro.zksnark.bn128.fq12 import FQ12
from repro.zksnark.bn128.pairing import multi_pairing, pairing
from repro.zksnark.qap import QAP


class _Drbg:
    """A tiny SHA-256 counter DRBG for reproducible trusted setups."""

    def __init__(self, seed: bytes) -> None:
        self._seed = seed
        self._counter = 0

    def field_element(self) -> int:
        """A uniform nonzero scalar in [1, r)."""
        while True:
            block = sha256(self._seed, b"drbg", self._counter.to_bytes(8, "big"))
            block += sha256(self._seed, b"drbg2", self._counter.to_bytes(8, "big"))
            self._counter += 1
            value = int.from_bytes(block, "big") % CURVE_ORDER
            if value != 0:
                return value


@dataclass
class Groth16VerifyingKey:
    """Verification material: 4 group elements + one IC point per input."""

    circuit_digest: bytes
    num_public: int
    alpha_g1: G1Point
    beta_g2: G2Point
    gamma_g2: G2Point
    delta_g2: G2Point
    ic: List[G1Point]
    alpha_beta: FQ12  # precomputed e(alpha, beta)

    def size_bytes(self) -> int:
        """Serialized size (what Table I's "Key" column measures)."""
        return len(self.to_bytes())

    def to_bytes(self) -> bytes:
        parts = [
            g1_to_bytes(self.alpha_g1),
            g2_to_bytes(self.beta_g2),
            g2_to_bytes(self.gamma_g2),
            g2_to_bytes(self.delta_g2),
        ]
        parts.extend(g1_to_bytes(point) for point in self.ic)
        return b"".join(parts)


@dataclass
class Groth16ProvingKey:
    """Proving material (per-wire queries plus the H-polynomial powers)."""

    circuit_digest: bytes
    num_public: int
    alpha_g1: G1Point
    beta_g1: G1Point
    beta_g2: G2Point
    delta_g1: G1Point
    delta_g2: G2Point
    a_query: List[G1Point]
    b_g1_query: List[G1Point]
    b_g2_query: List[G2Point]
    k_query: List[G1Point]  # aux wires only, indexed from num_public+1
    h_query: List[G1Point]

    def size_bytes(self) -> int:
        g1_count = (
            3 + len(self.a_query) + len(self.b_g1_query) + len(self.k_query) + len(self.h_query)
        )
        g2_count = 2 + len(self.b_g2_query)
        return 64 * g1_count + 128 * g2_count


_PROOF_LEN = 64 + 128 + 64


class Groth16Backend(ProvingBackend):
    """The real pairing-based backend."""

    name = "groth16"

    def setup(self, circuit: CircuitDefinition, seed: Optional[bytes] = None) -> KeyPair:
        if circuit.requires_ideal_backend:
            raise ProofError(
                f"circuit {circuit.name!r} declares native predicates that "
                "Groth16 cannot compile; use the mock backend"
            )
        cs = circuit.build(circuit.example_instance())
        cs.check_satisfied()
        r1cs = cs.to_r1cs()
        digest = full_circuit_digest(circuit, r1cs)
        qap = QAP(r1cs)
        drbg = _Drbg(seed if seed is not None else secrets.token_bytes(32))
        tau = drbg.field_element()
        alpha = drbg.field_element()
        beta = drbg.field_element()
        gamma = drbg.field_element()
        delta = drbg.field_element()

        evaluation = qap.evaluate_at(tau)
        p = CURVE_ORDER
        gamma_inv = pow(gamma, -1, p)
        delta_inv = pow(delta, -1, p)

        num_wires = r1cs.num_wires
        num_public = r1cs.num_public

        a_query = [g1_mul(G1, evaluation.a_at[i]) for i in range(num_wires)]
        b_g1_query = [g1_mul(G1, evaluation.b_at[i]) for i in range(num_wires)]
        b_g2_query = [g2_mul(G2, evaluation.b_at[i]) for i in range(num_wires)]

        def combined(i: int) -> int:
            return (
                beta * evaluation.a_at[i]
                + alpha * evaluation.b_at[i]
                + evaluation.c_at[i]
            ) % p

        ic = [g1_mul(G1, combined(i) * gamma_inv % p) for i in range(num_public + 1)]
        k_query = [
            g1_mul(G1, combined(i) * delta_inv % p)
            for i in range(num_public + 1, num_wires)
        ]
        z_delta = evaluation.z_at * delta_inv % p
        h_query = []
        power = 1
        for _ in range(max(0, evaluation.degree - 1)):
            h_query.append(g1_mul(G1, power * z_delta % p))
            power = power * tau % p

        alpha_g1 = g1_mul(G1, alpha)
        beta_g1 = g1_mul(G1, beta)
        beta_g2 = g2_mul(G2, beta)
        proving_key = Groth16ProvingKey(
            circuit_digest=digest,
            num_public=num_public,
            alpha_g1=alpha_g1,
            beta_g1=beta_g1,
            beta_g2=beta_g2,
            delta_g1=g1_mul(G1, delta),
            delta_g2=g2_mul(G2, delta),
            a_query=a_query,
            b_g1_query=b_g1_query,
            b_g2_query=b_g2_query,
            k_query=k_query,
            h_query=h_query,
        )
        verifying_key = Groth16VerifyingKey(
            circuit_digest=digest,
            num_public=num_public,
            alpha_g1=alpha_g1,
            beta_g2=beta_g2,
            gamma_g2=g2_mul(G2, gamma),
            delta_g2=proving_key.delta_g2,
            ic=ic,
            alpha_beta=pairing(beta_g2, alpha_g1),
        )
        return KeyPair(proving_key=proving_key, verifying_key=verifying_key)

    def prove(
        self,
        proving_key: Groth16ProvingKey,
        circuit: CircuitDefinition,
        instance: Any,
        rng: Optional[_Drbg] = None,
    ) -> Proof:
        cs = circuit.build(instance)
        r1cs = cs.to_r1cs()
        if full_circuit_digest(circuit, r1cs) != proving_key.circuit_digest:
            raise ProofError("proving key does not match this circuit structure")
        r1cs.check_satisfied(cs.assignment)
        assignment = cs.assignment
        qap = QAP(r1cs)
        h_coeffs = qap.witness_quotient(assignment)

        drbg = rng or _Drbg(secrets.token_bytes(32))
        blind_r = drbg.field_element()
        blind_s = drbg.field_element()
        p = CURVE_ORDER

        a_acc = g1_msm(proving_key.a_query, assignment)
        proof_a = g1_add(
            g1_add(proving_key.alpha_g1, a_acc), g1_mul(proving_key.delta_g1, blind_r)
        )

        b1_acc = g1_msm(proving_key.b_g1_query, assignment)
        proof_b_g1 = g1_add(
            g1_add(proving_key.beta_g1, b1_acc), g1_mul(proving_key.delta_g1, blind_s)
        )
        b2_acc: G2Point = None
        for point, value in zip(proving_key.b_g2_query, assignment):
            if value == 0 or point is None:
                continue
            b2_acc = g2_add(b2_acc, g2_mul(point, value))
        proof_b = g2_add(
            g2_add(proving_key.beta_g2, b2_acc), g2_mul(proving_key.delta_g2, blind_s)
        )

        aux_values = assignment[proving_key.num_public + 1 :]
        k_acc = g1_msm(proving_key.k_query, aux_values)
        h_acc = g1_msm(proving_key.h_query[: len(h_coeffs)], h_coeffs)
        proof_c = k_acc
        proof_c = g1_add(proof_c, h_acc)
        proof_c = g1_add(proof_c, g1_mul(proof_a, blind_s))
        proof_c = g1_add(proof_c, g1_mul(proof_b_g1, blind_r))
        proof_c = g1_add(proof_c, g1_neg(g1_mul(proving_key.delta_g1, blind_r * blind_s % p)))

        payload = g1_to_bytes(proof_a) + g2_to_bytes(proof_b) + g1_to_bytes(proof_c)
        return Proof(backend=self.name, payload=payload)

    def verify(
        self,
        verifying_key: Groth16VerifyingKey,
        public_inputs: List[int],
        proof: Proof,
    ) -> bool:
        self._check_backend(proof)
        if len(proof.payload) != _PROOF_LEN:
            return False
        if len(public_inputs) != verifying_key.num_public:
            return False
        try:
            proof_a = g1_from_bytes(proof.payload[:64])
            proof_b = g2_from_bytes(proof.payload[64:192])
            proof_c = g1_from_bytes(proof.payload[192:])
        except ValueError:
            return False
        ic_acc = verifying_key.ic[0]
        ic_points = verifying_key.ic[1:]
        ic_acc = g1_add(ic_acc, g1_msm(ic_points, [v % CURVE_ORDER for v in public_inputs]))
        lhs = multi_pairing(
            [
                (proof_b, proof_a),
                (verifying_key.gamma_g2, g1_neg(ic_acc)),
                (verifying_key.delta_g2, g1_neg(proof_c)),
            ]
        )
        return lhs == verifying_key.alpha_beta
