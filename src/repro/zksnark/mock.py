"""The ideal-SNARK-functionality backend.

Protocol-scale simulations (hundreds of tasks, many workers) cannot
afford a pure-Python pairing per message, so this backend models the
SNARK as the ideal functionality the paper's security analysis assumes:

- ``prove`` *refuses* to issue a proof unless the witness satisfies the
  constraint system (soundness by construction);
- the proof is a MAC over (circuit digest, statement) under a key
  created at setup, so a proof can only verify for the exact statement
  it was issued for and the exact circuit it was set up for;
- the proof reveals nothing about the witness (perfect zero-knowledge).

It shares the :class:`CircuitDefinition` interface with Groth16, so the
two backends are interchangeable everywhere (an ablation bench measures
the swap).  The proof payload is padded to the Groth16 proof length so
on-chain size accounting stays faithful.
"""

from __future__ import annotations

import hmac
import os
import secrets
from dataclasses import dataclass
from typing import Any, List, Optional

from repro import observability as obs
from repro.crypto.hashing import sha256
from repro.errors import ProofError
from repro.serialization import encode
from repro.zksnark.backend import (
    BatchProveJob,
    CircuitDefinition,
    KeyPair,
    Proof,
    ProvingBackend,
    fanout_map,
    full_circuit_digest,
)

#: Match the Groth16 proof size (A + B + C, uncompressed) for fair accounting.
_MOCK_PROOF_LEN = 256


@dataclass
class MockProvingKey:
    circuit_digest: bytes
    num_public: int
    mac_key: bytes


@dataclass
class MockVerifyingKey:
    circuit_digest: bytes
    num_public: int
    mac_key: bytes

    def size_bytes(self) -> int:
        # Mirror the Groth16 vk footprint: 4 group elements + 1 IC point
        # per public input (so size-vs-n curves keep the right shape).
        return 64 + 128 * 3 + 64 * (self.num_public + 1)


class MockBackend(ProvingBackend):
    """Ideal SNARK functionality with Groth16-shaped accounting.

    ``jobs`` controls the fork fan-out used by :meth:`prove_many` only
    (single proofs are too cheap to ship to a pool); it defaults to the
    ``REPRO_SNARK_JOBS`` env var, else the CPU count, so the engine's
    shared proving pool parallelizes out of the box.
    """

    name = "mock"

    def __init__(self, jobs: Optional[int] = None) -> None:
        if jobs is None:
            jobs = int(os.environ.get("REPRO_SNARK_JOBS", "0") or 0)
        self._jobs = max(1, jobs or (os.cpu_count() or 1))

    def prove_many(self, requests) -> List[Proof]:
        """Prove independent jobs across a fork pool, in request order.

        Proofs are deterministic MACs, so the fan-out is transcript-
        equivalent to the serial loop — only faster.  Falls back to the
        serial base implementation for tiny batches or where fork is
        unavailable.
        """
        requests = list(requests)
        if self._jobs <= 1 or len(requests) < 2:
            return super().prove_many(requests)
        with obs.span(
            "snark.prove_many", backend=self.name, jobs=len(requests)
        ):
            proofs = fanout_map(
                BatchProveJob(self), requests, self._jobs, chunked=False
            )
        if obs.TRACER.enabled:
            obs.count("snark.prove_many.calls")
            obs.count("snark.prove_many.jobs", len(requests))
        return proofs

    def setup(self, circuit: CircuitDefinition, seed: Optional[bytes] = None) -> KeyPair:
        with obs.span("snark.setup", backend=self.name, circuit=circuit.name):
            cs = circuit.build(circuit.example_instance())
            cs.check_satisfied()
            digest = full_circuit_digest(circuit, cs.to_r1cs())
            mac_key = sha256(b"mock-snark-key", seed if seed is not None else secrets.token_bytes(32), digest)
            proving_key = MockProvingKey(digest, cs.num_public, mac_key)
            verifying_key = MockVerifyingKey(digest, cs.num_public, mac_key)
        obs.count("snark.setup.calls")
        return KeyPair(proving_key=proving_key, verifying_key=verifying_key)

    def prove(
        self, proving_key: MockProvingKey, circuit: CircuitDefinition, instance: Any
    ) -> Proof:
        with obs.span("snark.prove", backend=self.name, circuit=circuit.name):
            proof = self._prove(proving_key, circuit, instance)
        obs.count("snark.prove.calls")
        return proof

    def _prove(
        self, proving_key: MockProvingKey, circuit: CircuitDefinition, instance: Any
    ) -> Proof:
        cs = circuit.build(instance)
        r1cs = cs.to_r1cs()
        if full_circuit_digest(circuit, r1cs) != proving_key.circuit_digest:
            raise ProofError("proving key does not match this circuit structure")
        # The ideal functionality only certifies true statements: both the
        # R1CS part and any native predicates must hold.
        r1cs.check_satisfied(cs.assignment)
        circuit.native_checks(instance)
        mac = self._mac(proving_key.mac_key, proving_key.circuit_digest, cs.public_values())
        padding = sha256(b"mock-padding", mac)
        payload = (mac + padding * 8)[:_MOCK_PROOF_LEN]
        return Proof(backend=self.name, payload=payload)

    def verify(
        self, verifying_key: MockVerifyingKey, public_inputs: List[int], proof: Proof
    ) -> bool:
        with obs.span(
            "snark.verify", backend=self.name, inputs=len(public_inputs)
        ) as verify_span:
            result = self._verify(verifying_key, public_inputs, proof)
            verify_span.set_attrs(valid=result)
        if obs.TRACER.enabled:
            obs.count("snark.verify.calls")
            if not result:
                obs.count("snark.verify.rejections")
        return result

    def _verify(
        self, verifying_key: MockVerifyingKey, public_inputs: List[int], proof: Proof
    ) -> bool:
        self._check_backend(proof)
        if len(proof.payload) != _MOCK_PROOF_LEN:
            return False
        if len(public_inputs) != verifying_key.num_public:
            return False
        expected = self._mac(
            verifying_key.mac_key, verifying_key.circuit_digest, public_inputs
        )
        return hmac.compare_digest(proof.payload[:32], expected)

    @staticmethod
    def _mac(key: bytes, digest: bytes, public_inputs: List[int]) -> bytes:
        statement = encode([digest, [int(v) for v in public_inputs]])
        return sha256(b"mock-snark-proof", key, statement)
