"""The BN128 (alt_bn128) pairing-friendly curve, from scratch.

This is the curve Ethereum's Byzantium release exposes through the
ecAdd/ecMul/ecPairing precompiles (the very integration the paper cites
in Section VI).  The tower is FQ → FQ2 (i² = −1) → FQ12
(w¹² − 18w⁶ + 82 = 0); the pairing is the optimal ate pairing.
"""

from repro.zksnark.bn128.fq import FIELD_MODULUS, CURVE_ORDER
from repro.zksnark.bn128.fq2 import FQ2
from repro.zksnark.bn128.fq12 import FQ12
from repro.zksnark.bn128.curve import (
    G1,
    G2,
    FixedBaseTable,
    g1_add,
    g1_fixed_base,
    g1_msm,
    g1_mul,
    g1_neg,
    g2_add,
    g2_fixed_base,
    g2_msm,
    g2_mul,
    g2_neg,
    is_in_g2_subgroup,
    is_on_g1,
    is_on_g2,
)
from repro.zksnark.bn128.pairing import (
    G2Prepared,
    final_exponentiate,
    miller_loop,
    multi_pairing,
    pairing,
    prepare_g2,
)

__all__ = [
    "FIELD_MODULUS",
    "CURVE_ORDER",
    "FQ2",
    "FQ12",
    "FixedBaseTable",
    "G1",
    "G2",
    "G2Prepared",
    "g1_add",
    "g1_fixed_base",
    "g1_msm",
    "g1_mul",
    "g1_neg",
    "g2_add",
    "g2_fixed_base",
    "g2_msm",
    "g2_mul",
    "g2_neg",
    "is_in_g2_subgroup",
    "is_on_g1",
    "is_on_g2",
    "final_exponentiate",
    "miller_loop",
    "multi_pairing",
    "pairing",
    "prepare_g2",
]
