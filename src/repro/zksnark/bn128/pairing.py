"""Optimal ate pairing on BN128.

G2 points are mapped through the sextic twist into FQ12, the Miller loop
runs over the 6u+2 ate loop count, and the final exponentiation raises
to (q^12 − 1)/r.  Structure follows the classical BN construction (the
same one libsnark/py_ecc implement); validated by bilinearity and
non-degeneracy property tests.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.zksnark.bn128.curve import G1Point, G2Point
from repro.zksnark.bn128.fq import CURVE_ORDER, FIELD_MODULUS
from repro.zksnark.bn128.fq12 import FQ12

_Q = FIELD_MODULUS

#: BN parameter: ate loop count = 6u + 2 with u = 4965661367192848881.
ATE_LOOP_COUNT = 29793968203157093288
_LOG_ATE_LOOP_COUNT = 63

#: Exponent of the final exponentiation.
_FINAL_EXPONENT = (FIELD_MODULUS**12 - 1) // CURVE_ORDER

# An FQ12 point is an affine pair of FQ12 coordinates (None = infinity).
FQ12Point = Optional[Tuple[FQ12, FQ12]]

_W2 = FQ12((0,) * 2 + (1,) + (0,) * 9)  # w^2
_W3 = FQ12((0,) * 3 + (1,) + (0,) * 8)  # w^3


def twist(point: G2Point) -> FQ12Point:
    """Map a G2 point (over FQ2) into the curve over FQ12 via the twist."""
    if point is None:
        return None
    x, y = point
    # Unwind the FQ2 representation from (9+i) basis into FQ12 coefficients.
    xc = (x.c0 - 9 * x.c1, x.c1)
    yc = (y.c0 - 9 * y.c1, y.c1)
    nx = FQ12((xc[0],) + (0,) * 5 + (xc[1],) + (0,) * 5)
    ny = FQ12((yc[0],) + (0,) * 5 + (yc[1],) + (0,) * 5)
    return (nx * _W2, ny * _W3)


def cast_g1_to_fq12(point: G1Point) -> FQ12Point:
    """Embed a G1 point into the FQ12 curve."""
    if point is None:
        return None
    x, y = point
    return (FQ12.from_fq(x), FQ12.from_fq(y))


def _line(p1: FQ12Point, p2: FQ12Point, t: FQ12Point) -> FQ12:
    """Evaluate the line through p1, p2 at point t (affine formulas)."""
    assert p1 is not None and p2 is not None and t is not None
    x1, y1 = p1
    x2, y2 = p2
    xt, yt = t
    if x1 != x2:
        slope = (y2 - y1) * (x2 - x1).inverse()
        return slope * (xt - x1) - (yt - y1)
    if y1 == y2:
        slope = (x1 * x1 * 3) * (y1 + y1).inverse()
        return slope * (xt - x1) - (yt - y1)
    return xt - x1


def _add_points(p1: FQ12Point, p2: FQ12Point) -> FQ12Point:
    if p1 is None:
        return p2
    if p2 is None:
        return p1
    x1, y1 = p1
    x2, y2 = p2
    if x1 == x2 and y1 == y2:
        slope = (x1 * x1 * 3) * (y1 + y1).inverse()
    elif x1 == x2:
        return None
    else:
        slope = (y2 - y1) * (x2 - x1).inverse()
    nx = slope * slope - x1 - x2
    ny = slope * (x1 - nx) - y1
    return (nx, ny)


def _frobenius_point(point: FQ12Point) -> FQ12Point:
    """Apply the q-power Frobenius coordinate-wise (x^q, y^q)."""
    if point is None:
        return None
    x, y = point
    return (x ** _Q, y ** _Q)


def miller_loop(q_point: G2Point, p_point: G1Point) -> FQ12:
    """The raw Miller loop (no final exponentiation) for e(P, Q).

    Returns FQ12.one() if either input is the point at infinity.
    """
    if q_point is None or p_point is None:
        return FQ12.one()
    q12 = twist(q_point)
    p12 = cast_g1_to_fq12(p_point)
    assert q12 is not None and p12 is not None
    r = q12
    f = FQ12.one()
    for i in range(_LOG_ATE_LOOP_COUNT, -1, -1):
        f = f * f * _line(r, r, p12)
        r = _add_points(r, r)
        if ATE_LOOP_COUNT & (1 << i):
            f = f * _line(r, q12, p12)
            r = _add_points(r, q12)
    q1 = _frobenius_point(q12)
    assert q1 is not None
    nq2 = _frobenius_point(q1)
    assert nq2 is not None
    nq2 = (nq2[0], -nq2[1])
    f = f * _line(r, q1, p12)
    r = _add_points(r, q1)
    f = f * _line(r, nq2, p12)
    return f


def final_exponentiate(value: FQ12) -> FQ12:
    """Raise to (q^12 − 1)/r, mapping Miller values into the r-torsion."""
    return value ** _FINAL_EXPONENT


def pairing(q_point: G2Point, p_point: G1Point) -> FQ12:
    """The optimal ate pairing e(P, Q) ∈ μ_r ⊂ FQ12."""
    return final_exponentiate(miller_loop(q_point, p_point))


def multi_pairing(pairs) -> FQ12:
    """Π e(P_i, Q_i) with a single shared final exponentiation.

    ``pairs`` is an iterable of (G2Point, G1Point) tuples.  This is how
    the Groth16 verifier keeps the pairing count affordable.
    """
    acc = FQ12.one()
    for q_point, p_point in pairs:
        acc = acc * miller_loop(q_point, p_point)
    return final_exponentiate(acc)
