"""Optimal ate pairing on BN128.

The Miller loop runs over the 6u+2 ate loop count.  The fast path keeps
the G2 operand on the twist (affine FQ2 arithmetic) and precomputes the
line coefficients once per G2 point (:func:`prepare_g2`); evaluating a
line at the G1 argument then yields a *sparse* FQ12 element (≤5 nonzero
coefficients) folded in via :meth:`FQ12.mul_sparse`.  Verifiers that
pair against fixed G2 points (Groth16's γ and δ) reuse one
:class:`G2Prepared` across every verification.

The final exponentiation splits (q^12 − 1)/r into the easy part
(q^6 − 1)(q^2 + 1) — a conjugation, one inversion and a Frobenius —
and the ~762-bit hard part (q^4 − q^2 + 1)/r, instead of a naive
~2794-bit exponentiation.

The historical FQ12-only implementation is kept as ``*_naive`` for
equivalence tests and before/after benchmarks.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro import observability as obs
from repro.zksnark.bn128.curve import G1Point, G2Point, g2_add, g2_double, g2_neg
from repro.zksnark.bn128.fq import CURVE_ORDER, FIELD_MODULUS
from repro.zksnark.bn128.fq2 import FQ2
from repro.zksnark.bn128.fq12 import FQ12

_Q = FIELD_MODULUS

#: BN parameter: ate loop count = 6u + 2 with u = 4965661367192848881.
ATE_LOOP_COUNT = 29793968203157093288
_LOG_ATE_LOOP_COUNT = 63

#: Exponent of the (naive, monolithic) final exponentiation.
_FINAL_EXPONENT = (FIELD_MODULUS**12 - 1) // CURVE_ORDER

#: Hard part of the decomposed final exponentiation: Φ₁₂(q)/r.
_HARD_EXPONENT = (FIELD_MODULUS**4 - FIELD_MODULUS**2 + 1) // CURVE_ORDER
assert (FIELD_MODULUS**4 - FIELD_MODULUS**2 + 1) % CURVE_ORDER == 0

# An FQ12 point is an affine pair of FQ12 coordinates (None = infinity).
FQ12Point = Optional[Tuple[FQ12, FQ12]]

_W2 = FQ12((0,) * 2 + (1,) + (0,) * 9)  # w^2
_W3 = FQ12((0,) * 3 + (1,) + (0,) * 8)  # w^3


def twist(point: G2Point) -> FQ12Point:
    """Map a G2 point (over FQ2) into the curve over FQ12 via the twist."""
    if point is None:
        return None
    x, y = point
    # Unwind the FQ2 representation from (9+i) basis into FQ12 coefficients.
    xc = (x.c0 - 9 * x.c1, x.c1)
    yc = (y.c0 - 9 * y.c1, y.c1)
    nx = FQ12((xc[0],) + (0,) * 5 + (xc[1],) + (0,) * 5)
    ny = FQ12((yc[0],) + (0,) * 5 + (yc[1],) + (0,) * 5)
    return (nx * _W2, ny * _W3)


def _untwist(point: FQ12Point) -> G2Point:
    """Invert :func:`twist` for FQ12 points in the twist's image."""
    if point is None:
        return None
    xc = point[0].coeffs
    yc = point[1].coeffs
    x = FQ2(xc[2] + 9 * xc[8], xc[8])
    y = FQ2(yc[3] + 9 * yc[9], yc[9])
    return (x, y)


def cast_g1_to_fq12(point: G1Point) -> FQ12Point:
    """Embed a G1 point into the FQ12 curve."""
    if point is None:
        return None
    x, y = point
    return (FQ12.from_fq(x), FQ12.from_fq(y))


# ----- prepared Miller loop (fast path) ------------------------------------------
#
# Line functions are computed on the twist in FQ2.  For twisted points
# the FQ12 slope is w·S with S the FQ2 twist slope, so the line through
# R evaluated at P = (xP, yP) ∈ G1 is
#
#     l(P) = −yP · 1 + xP · (S at w) + ((Y_R − S·X_R) at w^3)
#
# where "at w^k" denotes the twist embedding of an FQ2 element c0+c1·i
# into coefficient slots (k, k+6) as (c0 − 9·c1, c1).  A vertical line
# (R and −R) degenerates to l(P) = xP · 1 − (X_R at w^2).  Both shapes
# are sparse: 5 (resp. 3) nonzero FQ12 coefficients.

#: A line step: (square_first, slope FQ2 | None, aux FQ2).
#: slope=None marks a vertical line with aux = X_R; otherwise
#: aux = Y_R − slope·X_R.
_LineStep = Tuple[bool, Optional[FQ2], FQ2]


class G2Prepared:
    """Precomputed Miller-loop line coefficients for a fixed G2 point."""

    __slots__ = ("point", "steps")

    def __init__(self, point: G2Point, steps: Optional[List[_LineStep]]) -> None:
        self.point = point
        self.steps = steps


def _line_step(square_first: bool, p1: G2Point, p2: G2Point) -> _LineStep:
    x1, y1 = p1
    x2, y2 = p2
    if x1 != x2:
        slope = (y2 - y1) / (x2 - x1)
        return (square_first, slope, y1 - slope * x1)
    if y1 == y2:
        slope = (x1.square() * 3) / (y1 * 2)
        return (square_first, slope, y1 - slope * x1)
    return (square_first, None, x1)


def _g2_frobenius(point: G2Point) -> G2Point:
    """ψ = twist⁻¹ ∘ (q-power Frobenius) ∘ twist on G2."""
    if point is None:
        return None
    x12, y12 = twist(point)
    return _untwist((x12.frobenius(1), y12.frobenius(1)))


def prepare_g2(q_point: G2Point) -> G2Prepared:
    """Precompute every Miller-loop line coefficient for ``q_point``.

    Preparation walks the ate loop once in affine FQ2 (~90 cheap FQ2
    inversions); each later pairing against the point is then just
    sparse FQ12 updates.
    """
    if q_point is None:
        return G2Prepared(None, None)
    steps: List[_LineStep] = []
    r = q_point
    for i in range(_LOG_ATE_LOOP_COUNT, -1, -1):
        steps.append(_line_step(True, r, r))
        r = g2_add(r, r)
        if ATE_LOOP_COUNT & (1 << i):
            steps.append(_line_step(False, r, q_point))
            r = g2_add(r, q_point)
    q1 = _g2_frobenius(q_point)
    nq2 = g2_neg(_g2_frobenius(q1))
    steps.append(_line_step(False, r, q1))
    r = g2_add(r, q1)
    steps.append(_line_step(False, r, nq2))
    return G2Prepared(q_point, steps)


def _miller_eval(steps: List[_LineStep], p_point: G1Point, f: FQ12) -> FQ12:
    """Fold the prepared line steps, evaluated at ``p_point``, into f."""
    xp, yp = p_point
    nyp = -yp % _Q
    for square_first, slope, aux in steps:
        if square_first:
            f = f * f
        if slope is not None:
            items = (
                (0, nyp),
                (1, (slope.c0 - 9 * slope.c1) * xp),
                (7, slope.c1 * xp),
                (3, aux.c0 - 9 * aux.c1),
                (9, aux.c1),
            )
        else:
            items = ((0, xp), (2, 9 * aux.c1 - aux.c0), (8, -aux.c1))
        f = f.mul_sparse(items)
    return f


def miller_loop(q_point, p_point: G1Point) -> FQ12:
    """The raw Miller loop (no final exponentiation) for e(P, Q).

    ``q_point`` may be a plain G2 point or a :class:`G2Prepared`.
    Returns FQ12.one() if either input is the point at infinity.
    """
    if not isinstance(q_point, G2Prepared):
        q_point = prepare_g2(q_point)
    if q_point.steps is None or p_point is None:
        return FQ12.one()
    return _miller_eval(q_point.steps, p_point, FQ12.one())


def final_exponentiate(value: FQ12) -> FQ12:
    """Raise to (q^12 − 1)/r, mapping Miller values into the r-torsion.

    Decomposed: the easy part (q^6 − 1)(q^2 + 1) costs one conjugation,
    one inversion and one Frobenius; only the cyclotomic hard part
    Φ₁₂(q)/r needs a (much shorter) square-and-multiply chain.
    """
    f1 = value.conjugate() * value.inverse()  # ^(q^6 − 1): x^(q^6) = conj(x)
    f2 = f1.frobenius(2) * f1  # ^(q^2 + 1)
    return f2 ** _HARD_EXPONENT


def pairing(q_point, p_point: G1Point) -> FQ12:
    """The optimal ate pairing e(P, Q) ∈ μ_r ⊂ FQ12."""
    if obs.TRACER.enabled:
        obs.count("snark.pairing.calls")
        obs.count("snark.pairing.miller_loops")
    return final_exponentiate(miller_loop(q_point, p_point))


def multi_pairing(pairs) -> FQ12:
    """Π e(P_i, Q_i) with a single shared final exponentiation.

    ``pairs`` is an iterable of (G2Point | G2Prepared, G1Point) tuples.
    This is how the Groth16 verifier keeps the pairing count affordable,
    and how :meth:`Groth16Backend.batch_verify` amortizes n proofs into
    one product.
    """
    pairs = list(pairs)
    if obs.TRACER.enabled:
        obs.count("snark.pairing.multi_calls")
        obs.count("snark.pairing.miller_loops", len(pairs))
    acc = FQ12.one()
    for q_point, p_point in pairs:
        if not isinstance(q_point, G2Prepared):
            q_point = prepare_g2(q_point)
        if q_point.steps is None or p_point is None:
            continue
        acc = acc * _miller_eval(q_point.steps, p_point, FQ12.one())
    return final_exponentiate(acc)


# ----- naive reference path ------------------------------------------------------


def _line(p1: FQ12Point, p2: FQ12Point, t: FQ12Point) -> FQ12:
    """Evaluate the line through p1, p2 at point t (affine FQ12 formulas)."""
    assert p1 is not None and p2 is not None and t is not None
    x1, y1 = p1
    x2, y2 = p2
    xt, yt = t
    if x1 != x2:
        slope = (y2 - y1) * (x2 - x1).inverse()
        return slope * (xt - x1) - (yt - y1)
    if y1 == y2:
        slope = (x1 * x1 * 3) * (y1 + y1).inverse()
        return slope * (xt - x1) - (yt - y1)
    return xt - x1


def _add_points(p1: FQ12Point, p2: FQ12Point) -> FQ12Point:
    if p1 is None:
        return p2
    if p2 is None:
        return p1
    x1, y1 = p1
    x2, y2 = p2
    if x1 == x2 and y1 == y2:
        slope = (x1 * x1 * 3) * (y1 + y1).inverse()
    elif x1 == x2:
        return None
    else:
        slope = (y2 - y1) * (x2 - x1).inverse()
    nx = slope * slope - x1 - x2
    ny = slope * (x1 - nx) - y1
    return (nx, ny)


def _frobenius_point(point: FQ12Point) -> FQ12Point:
    """Apply the q-power Frobenius coordinate-wise (x^q, y^q)."""
    if point is None:
        return None
    x, y = point
    return (x.frobenius(1), y.frobenius(1))


def miller_loop_naive(q_point: G2Point, p_point: G1Point) -> FQ12:
    """The historical all-FQ12 Miller loop (reference oracle)."""
    if q_point is None or p_point is None:
        return FQ12.one()
    q12 = twist(q_point)
    p12 = cast_g1_to_fq12(p_point)
    assert q12 is not None and p12 is not None
    r = q12
    f = FQ12.one()
    for i in range(_LOG_ATE_LOOP_COUNT, -1, -1):
        f = f * f * _line(r, r, p12)
        r = _add_points(r, r)
        if ATE_LOOP_COUNT & (1 << i):
            f = f * _line(r, q12, p12)
            r = _add_points(r, q12)
    q1 = _frobenius_point(q12)
    assert q1 is not None
    nq2 = _frobenius_point(q1)
    assert nq2 is not None
    nq2 = (nq2[0], -nq2[1])
    f = f * _line(r, q1, p12)
    r = _add_points(r, q1)
    f = f * _line(r, nq2, p12)
    return f


def final_exponentiate_naive(value: FQ12) -> FQ12:
    """Monolithic (q^12 − 1)/r exponentiation (reference oracle)."""
    return value ** _FINAL_EXPONENT


def pairing_naive(q_point: G2Point, p_point: G1Point) -> FQ12:
    """Reference pairing via the naive Miller loop and exponentiation."""
    return final_exponentiate_naive(miller_loop_naive(q_point, p_point))


def multi_pairing_naive(pairs) -> FQ12:
    """Reference multi-pairing (naive Miller loops, naive exponent)."""
    pairs = list(pairs)
    if obs.TRACER.enabled:
        obs.count("snark.pairing.multi_naive_calls")
        obs.count("snark.pairing.miller_loops", len(pairs))
    acc = FQ12.one()
    for q_point, p_point in pairs:
        acc = acc * miller_loop_naive(q_point, p_point)
    return final_exponentiate_naive(acc)
