"""BN128 base-field constants and scalar helpers.

Base-field elements are plain Python ints reduced modulo
``FIELD_MODULUS``; keeping them unboxed is what makes the pure-Python
pairing usable.
"""

from __future__ import annotations

#: The BN128 base-field modulus q (coordinates of curve points).
FIELD_MODULUS = (
    21888242871839275222246405745257275088696311157297823662689037894645226208583
)

#: The BN128 group order r (the scalar field; also the R1CS field).
CURVE_ORDER = (
    21888242871839275222246405745257275088548364400416034343698204186575808495617
)


def fq_add(a: int, b: int) -> int:
    return (a + b) % FIELD_MODULUS


def fq_sub(a: int, b: int) -> int:
    return (a - b) % FIELD_MODULUS


def fq_mul(a: int, b: int) -> int:
    return (a * b) % FIELD_MODULUS


def fq_inv(a: int) -> int:
    if a % FIELD_MODULUS == 0:
        raise ZeroDivisionError("inverse of zero in FQ")
    return pow(a, -1, FIELD_MODULUS)


def fq_neg(a: int) -> int:
    return -a % FIELD_MODULUS
