"""BN128 base-field constants and scalar helpers.

Base-field elements are plain Python ints reduced modulo
``FIELD_MODULUS``; keeping them unboxed is what makes the pure-Python
pairing usable.
"""

from __future__ import annotations

from repro.zksnark.bn128.mont import MontContext

#: The BN128 base-field modulus q (coordinates of curve points).
FIELD_MODULUS = (
    21888242871839275222246405745257275088696311157297823662689037894645226208583
)

#: The BN128 group order r (the scalar field; also the R1CS field).
CURVE_ORDER = (
    21888242871839275222246405745257275088548364400416034343698204186575808495617
)


def fq_add(a: int, b: int) -> int:
    return (a + b) % FIELD_MODULUS


def fq_sub(a: int, b: int) -> int:
    return (a - b) % FIELD_MODULUS


def fq_mul(a: int, b: int) -> int:
    return (a * b) % FIELD_MODULUS


def fq_inv(a: int) -> int:
    if a % FIELD_MODULUS == 0:
        raise ZeroDivisionError("inverse of zero in FQ")
    return pow(a, -1, FIELD_MODULUS)


def fq_neg(a: int) -> int:
    return -a % FIELD_MODULUS


def fq_from_bytes(data: bytes) -> int:
    """Decode a canonical 32-byte big-endian FQ element.

    Rejects non-canonical limbs (value ≥ q): silently reducing them
    would let distinct wire bytes decode to equal field elements — an
    encoding-malleability hole in every point/proof codec above this.
    """
    if len(data) != 32:
        raise ValueError("FQ encoding must be 32 bytes")
    value = int.from_bytes(data, "big")
    if value >= FIELD_MODULUS:
        raise ValueError("non-canonical FQ encoding (limb >= field modulus)")
    return value


#: Montgomery context for FQ (R = 2^256).  The Montgomery-domain fast
#: paths in :mod:`repro.zksnark.bn128.curve` run on these helpers and
#: are differential-tested against the plain ``% q`` arithmetic above.
MONT = MontContext(FIELD_MODULUS, 256)
