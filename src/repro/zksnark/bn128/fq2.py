"""FQ2 = FQ[i] / (i^2 + 1): the quadratic extension hosting G2."""

from __future__ import annotations

from repro.zksnark.bn128.fq import FIELD_MODULUS

_Q = FIELD_MODULUS


class FQ2:
    """An element c0 + c1·i of FQ2 with i² = −1."""

    __slots__ = ("c0", "c1")

    def __init__(self, c0: int, c1: int = 0) -> None:
        self.c0 = c0 % _Q
        self.c1 = c1 % _Q

    # -- constructors --------------------------------------------------------

    @classmethod
    def zero(cls) -> "FQ2":
        return cls(0, 0)

    @classmethod
    def one(cls) -> "FQ2":
        return cls(1, 0)

    # -- arithmetic -----------------------------------------------------------

    def __add__(self, other: "FQ2") -> "FQ2":
        return FQ2(self.c0 + other.c0, self.c1 + other.c1)

    def __sub__(self, other: "FQ2") -> "FQ2":
        return FQ2(self.c0 - other.c0, self.c1 - other.c1)

    def __neg__(self) -> "FQ2":
        return FQ2(-self.c0, -self.c1)

    def __mul__(self, other) -> "FQ2":
        if isinstance(other, int):
            return FQ2(self.c0 * other, self.c1 * other)
        # (a0 + a1 i)(b0 + b1 i) = (a0 b0 - a1 b1) + (a0 b1 + a1 b0) i
        a0, a1, b0, b1 = self.c0, self.c1, other.c0, other.c1
        return FQ2(a0 * b0 - a1 * b1, a0 * b1 + a1 * b0)

    __rmul__ = __mul__

    def square(self) -> "FQ2":
        a0, a1 = self.c0, self.c1
        return FQ2((a0 + a1) * (a0 - a1), 2 * a0 * a1)

    def inverse(self) -> "FQ2":
        a0, a1 = self.c0, self.c1
        norm = (a0 * a0 + a1 * a1) % _Q
        if norm == 0:
            raise ZeroDivisionError("inverse of zero in FQ2")
        inv_norm = pow(norm, -1, _Q)
        return FQ2(a0 * inv_norm, -a1 * inv_norm)

    def __truediv__(self, other: "FQ2") -> "FQ2":
        return self * other.inverse()

    def conjugate(self) -> "FQ2":
        return FQ2(self.c0, -self.c1)

    def frobenius(self) -> "FQ2":
        """The q-power Frobenius on FQ2 is conjugation."""
        return self.conjugate()

    def is_zero(self) -> bool:
        return self.c0 == 0 and self.c1 == 0

    # -- comparisons / misc ----------------------------------------------------

    def __eq__(self, other) -> bool:
        if not isinstance(other, FQ2):
            return NotImplemented
        return self.c0 == other.c0 and self.c1 == other.c1

    def __hash__(self) -> int:
        return hash((self.c0, self.c1))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FQ2({self.c0}, {self.c1})"

    def to_bytes(self) -> bytes:
        return self.c0.to_bytes(32, "big") + self.c1.to_bytes(32, "big")

    @classmethod
    def from_bytes(cls, data: bytes) -> "FQ2":
        if len(data) != 64:
            raise ValueError("FQ2 encoding must be 64 bytes")
        return cls(int.from_bytes(data[:32], "big"), int.from_bytes(data[32:], "big"))
