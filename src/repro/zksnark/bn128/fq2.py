"""FQ2 = FQ[i] / (i^2 + 1): the quadratic extension hosting G2.

Multiplication is 3-multiply Karatsuba over the complex structure;
:meth:`FQ2.from_bytes` rejects non-canonical limbs so each field
element has exactly one wire encoding.  Montgomery-domain helpers
(:func:`fq2_to_mont` / :func:`fq2_mont_mul` / …) mirror the plain
arithmetic for the representation-level fast paths in ``curve.py``.
"""

from __future__ import annotations

from typing import Tuple

from repro.zksnark.bn128.fq import FIELD_MODULUS, MONT, fq_from_bytes

_Q = FIELD_MODULUS


class FQ2:
    """An element c0 + c1·i of FQ2 with i² = −1."""

    __slots__ = ("c0", "c1")

    def __init__(self, c0: int, c1: int = 0) -> None:
        self.c0 = c0 % _Q
        self.c1 = c1 % _Q

    # -- constructors --------------------------------------------------------

    @classmethod
    def zero(cls) -> "FQ2":
        return cls(0, 0)

    @classmethod
    def one(cls) -> "FQ2":
        return cls(1, 0)

    # -- arithmetic -----------------------------------------------------------

    def __add__(self, other: "FQ2") -> "FQ2":
        return FQ2(self.c0 + other.c0, self.c1 + other.c1)

    def __sub__(self, other: "FQ2") -> "FQ2":
        return FQ2(self.c0 - other.c0, self.c1 - other.c1)

    def __neg__(self) -> "FQ2":
        return FQ2(-self.c0, -self.c1)

    def __mul__(self, other) -> "FQ2":
        if isinstance(other, int):
            return FQ2(self.c0 * other, self.c1 * other)
        # Karatsuba: (a0 + a1 i)(b0 + b1 i) costs 3 multiplies, not 4 —
        # the cross term is (a0+a1)(b0+b1) − a0b0 − a1b1.
        a0, a1, b0, b1 = self.c0, self.c1, other.c0, other.c1
        t0 = a0 * b0
        t1 = a1 * b1
        return FQ2(t0 - t1, (a0 + a1) * (b0 + b1) - t0 - t1)

    __rmul__ = __mul__

    def square(self) -> "FQ2":
        a0, a1 = self.c0, self.c1
        return FQ2((a0 + a1) * (a0 - a1), 2 * a0 * a1)

    def inverse(self) -> "FQ2":
        a0, a1 = self.c0, self.c1
        norm = (a0 * a0 + a1 * a1) % _Q
        if norm == 0:
            raise ZeroDivisionError("inverse of zero in FQ2")
        inv_norm = pow(norm, -1, _Q)
        return FQ2(a0 * inv_norm, -a1 * inv_norm)

    def __truediv__(self, other: "FQ2") -> "FQ2":
        return self * other.inverse()

    def conjugate(self) -> "FQ2":
        return FQ2(self.c0, -self.c1)

    def frobenius(self) -> "FQ2":
        """The q-power Frobenius on FQ2 is conjugation."""
        return self.conjugate()

    def is_zero(self) -> bool:
        return self.c0 == 0 and self.c1 == 0

    # -- comparisons / misc ----------------------------------------------------

    def __eq__(self, other) -> bool:
        if not isinstance(other, FQ2):
            return NotImplemented
        return self.c0 == other.c0 and self.c1 == other.c1

    def __hash__(self) -> int:
        return hash((self.c0, self.c1))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FQ2({self.c0}, {self.c1})"

    def to_bytes(self) -> bytes:
        return self.c0.to_bytes(32, "big") + self.c1.to_bytes(32, "big")

    @classmethod
    def from_bytes(cls, data: bytes) -> "FQ2":
        """Decode a canonical 64-byte encoding.

        Limbs ≥ the field modulus are rejected rather than silently
        reduced: accepting them would give every element many distinct
        wire encodings, an encoding-malleability hole in G2/proof/vk
        deserialization (distinct bytes decoding to equal elements).
        """
        if len(data) != 64:
            raise ValueError("FQ2 encoding must be 64 bytes")
        return cls(fq_from_bytes(data[:32]), fq_from_bytes(data[32:]))


# ----- Montgomery-domain coefficient pairs ------------------------------------
#
# The G2 hot paths in ``curve.py`` run on raw (c0, c1) int pairs rather
# than FQ2 instances; these helpers provide the Montgomery counterpart
# of the Karatsuba product above.  All values are canonical ([0, q)).


def fq2_to_mont(value: "FQ2") -> Tuple[int, int]:
    """An FQ2 element as a Montgomery-domain coefficient pair."""
    return (MONT.to_mont(value.c0), MONT.to_mont(value.c1))


def fq2_from_mont(pair: Tuple[int, int]) -> "FQ2":
    """Rebuild an FQ2 element from a Montgomery-domain pair."""
    return FQ2(MONT.from_mont(pair[0]), MONT.from_mont(pair[1]))


def fq2_mont_mul(a: Tuple[int, int], b: Tuple[int, int]) -> Tuple[int, int]:
    """Karatsuba product of two Montgomery-domain pairs."""
    a0, a1 = a
    b0, b1 = b
    t0 = MONT.mul(a0, b0)
    t1 = MONT.mul(a1, b1)
    cross = MONT.mul(a0 + a1, b0 + b1)
    return ((t0 - t1) % _Q, (cross - t0 - t1) % _Q)


def fq2_mont_square(a: Tuple[int, int]) -> Tuple[int, int]:
    """Square of a Montgomery-domain pair (2 multiplies)."""
    a0, a1 = a
    return (MONT.mul(a0 + a1, a0 - a1 + _Q), MONT.mul(2 * a0, a1))
