"""GLV scalar decomposition for curves with an efficient endomorphism.

Curves whose base field has a primitive cube root of unity β admit the
endomorphism φ(x, y) = (βx, y), which acts on the prime-order subgroup
as multiplication by λ, a primitive cube root of unity mod the group
order n.  Splitting a scalar k into k ≡ k₁ + k₂·λ (mod n) with
|k₁|, |k₂| ≈ √n halves the doubling count of a scalar multiplication
and halves the window count of a Pippenger MSM.

Soundness of the decomposition does not rest on the lattice basis being
short — shortness only buys speed.  :meth:`GLVParams.decompose` returns
(k₁, k₂) with the *exact* congruence k₁ + k₂·λ ≡ k (mod n), asserted
in the differential sweep for every seeded case, so a mis-sized basis
can slow the fast path down but can never change the group element it
computes.  Both moduli used here (BN128's r and secp256k1's n) satisfy
n ≡ 1 (mod 3), which guarantees the cube roots exist.

The module is pure integer math with no curve imports; callers
(``bn128.curve`` and ``crypto.ecdsa``) pair each λ with the matching β
by checking φ(G) = λ·G against their own multiplication oracle once.
"""

from __future__ import annotations

from math import isqrt
from typing import Tuple


def cube_root_of_unity(modulus: int) -> int:
    """A primitive cube root of unity mod a prime ≡ 1 (mod 3).

    Found as g^((p−1)/3) for small candidate g; the result λ ≠ 1
    satisfies λ² + λ + 1 ≡ 0 (mod p).
    """
    if modulus % 3 != 1:
        raise ValueError("no primitive cube root of unity: p != 1 mod 3")
    exponent = (modulus - 1) // 3
    for g in range(2, 1000):
        root = pow(g, exponent, modulus)
        if root != 1:
            if (root * root + root + 1) % modulus != 0:
                raise ArithmeticError("modulus is not prime")
            return root
    raise ArithmeticError("no generator candidate below 1000")


def _lattice_basis(n: int, lam: int) -> Tuple[Tuple[int, int], Tuple[int, int]]:
    """Two short vectors (a, b) with a + b·λ ≡ 0 (mod n).

    The extended Euclid run on (n, λ) yields r_i = s_i·n + t_i·λ at
    every step, i.e. r_i − t_i·λ ≡ 0 (mod n); stopping around √n gives
    vectors of norm ≈ √n (GLV, Algorithm 3.74 in Hankerson–Menezes–
    Vanstone).
    """
    sqrt_n = isqrt(n)
    r0, r1 = n, lam % n
    t0, t1 = 0, 1
    rows = []
    while r1 != 0:
        quotient = r0 // r1
        r0, r1 = r1, r0 - quotient * r1
        t0, t1 = t1, t0 - quotient * t1
        rows.append((r0, t0))
        if r0 < sqrt_n and len(rows) >= 2:
            break
    # rows[-1] = (r_{l+1}, t_{l+1}) just under sqrt(n); rows[-2] just over.
    (r_hi, t_hi), (r_lo, t_lo) = rows[-2], rows[-1]
    v1 = (r_lo, -t_lo)
    v2 = (r_hi, -t_hi)
    return v1, v2


def _round_div(a: int, b: int) -> int:
    """round(a / b) for b > 0, rounding half away from zero."""
    if a >= 0:
        return (2 * a + b) // (2 * b)
    return -((-2 * a + b) // (2 * b))


class GLVParams:
    """Decomposition parameters for one (group order, λ) pair."""

    __slots__ = ("order", "lam", "v1", "v2")

    def __init__(self, order: int, lam: int) -> None:
        if (lam * lam + lam + 1) % order != 0:
            raise ValueError("lambda is not a primitive cube root of unity mod n")
        self.order = order
        self.lam = lam % order
        v1, v2 = _lattice_basis(order, self.lam)
        # The rounding formulas in decompose() assume det(v1, v2) = +n;
        # adjacent Euclid rows give ±n, so flip v2 when the sign is off
        # (negating a lattice vector keeps it in the kernel lattice).
        det = v1[0] * v2[1] - v2[0] * v1[1]
        if det < 0:
            v2 = (-v2[0], -v2[1])
            det = -det
        if det != order:
            raise ArithmeticError("GLV lattice basis determinant is not n")
        self.v1, self.v2 = v1, v2

    @classmethod
    def for_order(cls, order: int) -> "GLVParams":
        return cls(order, cube_root_of_unity(order))

    def other_root(self) -> "GLVParams":
        """Parameters for the conjugate root λ² (the other endomorphism)."""
        return GLVParams(self.order, self.lam * self.lam % self.order)

    def decompose(self, k: int) -> Tuple[int, int]:
        """Split k into (k₁, k₂) with k₁ + k₂·λ ≡ k (mod n), both short.

        The congruence holds exactly for every k by construction: the
        correction vector c₁·v1 + c₂·v2 lies in the kernel lattice
        {(a, b) : a + b·λ ≡ 0 (mod n)}, so subtracting it from (k, 0)
        cannot change the residue.
        """
        n = self.order
        k %= n
        (a1, b1), (a2, b2) = self.v1, self.v2
        c1 = _round_div(b2 * k, n)
        c2 = _round_div(-b1 * k, n)
        k1 = k - c1 * a1 - c2 * a2
        k2 = -c1 * b1 - c2 * b2
        return k1, k2

    def max_component_bits(self) -> int:
        """An upper bound on |k₁|, |k₂| bit length (for MSM window sizing)."""
        (a1, b1), (a2, b2) = self.v1, self.v2
        bound = max(abs(a1) + abs(a2), abs(b1) + abs(b2))
        return bound.bit_length()
