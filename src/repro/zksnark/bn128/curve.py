"""BN128 group operations.

G1 points are affine ``(x, y)`` int pairs (or ``None`` for infinity) on
``y² = x³ + 3`` over FQ; G2 points are affine pairs of :class:`FQ2` on
the twist ``y² = x³ + 3/(9+i)``.  All scalar multiplication and
multi-scalar multiplication runs in Jacobian coordinates (no field
inversions on the hot path); MSMs use Pippenger bucket windowing and
repeated multiplications of a fixed base go through precomputed
windowed tables (:class:`FixedBaseTable`).

Two representation-level fast paths sit behind runtime toggles
(:func:`set_fast_opts`, env ``REPRO_BN128_MONTGOMERY`` /
``REPRO_BN128_GLV``): a Montgomery-domain G1 Jacobian core, and GLV
endomorphism decomposition for G1 scalar multiplication and MSM.  The
G2 hot path always runs on raw ``(c0, c1)`` int pairs with 3-multiply
Karatsuba FQ2 products rather than boxed :class:`FQ2` instances.  Every
fast path is pinned to the naive oracles by the differential sweep with
each toggle axis exercised independently.
"""

from __future__ import annotations

import os
from typing import List, Optional, Sequence, Tuple

from repro import observability as obs
from repro.zksnark.bn128.fq import CURVE_ORDER, FIELD_MODULUS, MONT, fq_from_bytes
from repro.zksnark.bn128.fq2 import FQ2
from repro.zksnark.bn128.glv import GLVParams, cube_root_of_unity

_Q = FIELD_MODULUS


def _env_flag(name: str, default: bool) -> bool:
    raw = os.environ.get(name)
    if raw is None:
        return default
    return raw.strip().lower() not in ("0", "false", "no", "off", "")


class _FastOpts:
    __slots__ = ("montgomery", "glv")

    def __init__(self, montgomery: bool, glv: bool) -> None:
        self.montgomery = montgomery
        self.glv = glv


#: Process-wide fast-path toggles (read once from the environment).
#: Montgomery defaults OFF: measured on CPython 3.11 big ints, an
#: inlined REDC (three ~half-width multiplies plus shifts) loses to the
#: single native ``(a*b) % q`` it replaces (~46 ms vs ~36 ms for a
#: 64-point MSM), so the Montgomery core is kept as a correctness-pinned
#: representation axis rather than the default path.  GLV defaults ON
#: (~1.5× MSM, ~1.8× single mul).
_OPTS = _FastOpts(
    montgomery=_env_flag("REPRO_BN128_MONTGOMERY", False),
    glv=_env_flag("REPRO_BN128_GLV", True),
)


def set_fast_opts(
    montgomery: Optional[bool] = None, glv: Optional[bool] = None
) -> Tuple[bool, bool]:
    """Flip the representation-level fast paths; returns the prior state.

    Used by the differential sweep to pin every toggle combination to
    the same oracle, and available to callers that want the plain
    ``% q`` arithmetic (e.g. when debugging with a big-int tracer).
    """
    prior = (_OPTS.montgomery, _OPTS.glv)
    if montgomery is not None:
        _OPTS.montgomery = montgomery
    if glv is not None:
        _OPTS.glv = glv
    return prior


def get_fast_opts() -> Tuple[bool, bool]:
    """The current ``(montgomery, glv)`` toggle state."""
    return (_OPTS.montgomery, _OPTS.glv)

G1Point = Optional[Tuple[int, int]]
G2Point = Optional[Tuple[FQ2, FQ2]]

#: Curve coefficient b for G1.
B1 = 3
#: Twist coefficient b2 = 3 / (9 + i) for G2.
B2 = FQ2(3, 0) / FQ2(9, 1)

#: Canonical generators (matching Ethereum's alt_bn128 precompiles).
G1: G1Point = (1, 2)
G2: G2Point = (
    FQ2(
        10857046999023057135944570762232829481370756359578518086990519993285655852781,
        11559732032986387107991004021392285783925812861821192530917403151452391805634,
    ),
    FQ2(
        8495653923123431417604973247489272438418190587263600148770280649306958101930,
        4082367875863433681332203403145435568316851327593401208105741076214120093531,
    ),
)


def is_on_g1(point: G1Point) -> bool:
    """Membership test for G1 (affine curve equation).

    G1 has cofactor 1, so the curve equation alone IS the subgroup
    check.
    """
    if point is None:
        return True
    x, y = point
    return (y * y - x * x * x - B1) % _Q == 0


def is_on_g2(point: G2Point) -> bool:
    """Curve-equation test for the twist.

    This is NOT a subgroup check: the twist has a large cofactor, so a
    point can satisfy the curve equation while lying outside the
    r-order subgroup.  Use :func:`is_in_g2_subgroup` (as
    :func:`g2_from_bytes` does) whenever the point comes from an
    untrusted source.
    """
    if point is None:
        return True
    x, y = point
    return y.square() - x.square() * x == B2


def is_in_g2_subgroup(point: G2Point) -> bool:
    """Full G2 membership: curve equation plus r-torsion.

    The twist's group order is c·r with a ~254-bit cofactor c, so the
    curve equation must be complemented by an order check
    ``r·P = O``; without it a malicious prover can smuggle a point of
    the wrong order into the pairing.
    """
    if point is None:
        return True
    if not is_on_g2(point):
        return False
    return _g2r_is_zero(_g2r_jac_mul(_g2_to_raw(point), CURVE_ORDER))


def g1_neg(point: G1Point) -> G1Point:
    if point is None:
        return None
    return (point[0], -point[1] % _Q)


# ----- G1 Jacobian core ----------------------------------------------------------


def _g1_jac_double(pt):
    x, y, z = pt
    if y == 0 or z == 0:
        return (0, 1, 0)
    ysq = (y * y) % _Q
    s = (4 * x * ysq) % _Q
    m = (3 * x * x) % _Q
    nx = (m * m - 2 * s) % _Q
    ny = (m * (s - nx) - 8 * ysq * ysq) % _Q
    nz = (2 * y * z) % _Q
    return (nx, ny, nz)


def _g1_jac_add(p1, p2):
    if p1[2] == 0:
        return p2
    if p2[2] == 0:
        return p1
    x1, y1, z1 = p1
    x2, y2, z2 = p2
    # Mixed-add shortcut: Pippenger bucket accumulation and table walks
    # feed one affine (z = 1) operand most of the time, saving four of
    # the sixteen field multiplies.
    if z2 == 1:
        u1, s1 = x1, y1
        z1sq = (z1 * z1) % _Q
        u2 = (x2 * z1sq) % _Q
        s2 = (y2 * z1sq * z1) % _Q
        zz = z1
    elif z1 == 1:
        u2, s2 = x2, y2
        z2sq = (z2 * z2) % _Q
        u1 = (x1 * z2sq) % _Q
        s1 = (y1 * z2sq * z2) % _Q
        zz = z2
    else:
        z1sq = (z1 * z1) % _Q
        z2sq = (z2 * z2) % _Q
        u1 = (x1 * z2sq) % _Q
        u2 = (x2 * z1sq) % _Q
        s1 = (y1 * z2sq * z2) % _Q
        s2 = (y2 * z1sq * z1) % _Q
        zz = (z1 * z2) % _Q
    if u1 == u2:
        if s1 != s2:
            return (0, 1, 0)
        return _g1_jac_double(p1)
    h = (u2 - u1) % _Q
    r = (s2 - s1) % _Q
    h2 = (h * h) % _Q
    h3 = (h * h2) % _Q
    u1h2 = (u1 * h2) % _Q
    nx = (r * r - h3 - 2 * u1h2) % _Q
    ny = (r * (u1h2 - nx) - s1 * h3) % _Q
    nz = (h * zz) % _Q
    return (nx, ny, nz)


def _g1_from_jac(pt) -> G1Point:
    x, y, z = pt
    if z == 0:
        return None
    zi = pow(z, -1, _Q)
    zi2 = (zi * zi) % _Q
    return ((x * zi2) % _Q, (y * zi2 * zi) % _Q)


def _g1_jac_is_zero(pt) -> bool:
    return pt[2] == 0


# ----- G1 Montgomery-domain Jacobian core ----------------------------------------
#
# Identical formulas with every field multiply routed through REDC.
# Coordinates are Montgomery residues (a·R mod q); small-constant
# scaling (2x, 3x, 4x) is linear so it commutes with the domain map.
# All REDC inputs stay below q·R: the largest product formed is
# (4q)·q < q·2^256 for the 254-bit modulus.


def _g1m_enter(point: G1Point):
    to_mont = MONT.to_mont
    return (to_mont(point[0]), to_mont(point[1]), MONT.r1)


def _g1m_from_jac(pt) -> G1Point:
    x, y, z = pt
    if z == 0:
        return None
    mul = MONT.mul
    zi = MONT.inv(z)
    zi2 = mul(zi, zi)
    return (MONT.from_mont(mul(x, zi2)), MONT.from_mont(mul(mul(y, zi2), zi)))


_M_MASK = MONT.mask
_M_BITS = MONT.bits
_M_NQI = MONT.neg_qinv


def _g1m_jac_double(pt):
    x, y, z = pt
    if y == 0 or z == 0:
        return (0, MONT.r1, 0)
    q, mask, bits, nqi = _Q, _M_MASK, _M_BITS, _M_NQI
    t = y * y
    ysq = (t + ((t & mask) * nqi & mask) * q) >> bits
    t = 4 * x * ysq
    s = (t + ((t & mask) * nqi & mask) * q) >> bits
    t = 3 * x * x
    m = (t + ((t & mask) * nqi & mask) * q) >> bits
    # Lazy: ysq, s, m stay in [0, 2q); products below remain < q·R.
    t = m * m
    nx = (((t + ((t & mask) * nqi & mask) * q) >> bits) - 2 * s) % q
    t = m * (s - nx + 2 * q)
    ny = ((t + ((t & mask) * nqi & mask) * q) >> bits)
    t = ysq * ysq
    ny = (ny - 8 * ((t + ((t & mask) * nqi & mask) * q) >> bits)) % q
    t = 2 * y * z
    nz = (t + ((t & mask) * nqi & mask) * q) >> bits
    if nz >= q:
        nz -= q
    return (nx, ny, nz)


def _g1m_jac_add(p1, p2):
    if p1[2] == 0:
        return p2
    if p2[2] == 0:
        return p1
    x1, y1, z1 = p1
    x2, y2, z2 = p2
    q, mask, bits, nqi = _Q, _M_MASK, _M_BITS, _M_NQI
    one = MONT.r1
    if z2 == one:
        u1, s1 = x1, y1
        t = z1 * z1
        z1sq = (t + ((t & mask) * nqi & mask) * q) >> bits
        t = x2 * z1sq
        u2 = (t + ((t & mask) * nqi & mask) * q) >> bits
        if u2 >= q:
            u2 -= q
        t = y2 * z1sq
        t = ((t + ((t & mask) * nqi & mask) * q) >> bits) * z1
        s2 = (t + ((t & mask) * nqi & mask) * q) >> bits
        if s2 >= q:
            s2 -= q
        zz = z1
    elif z1 == one:
        u2, s2 = x2, y2
        t = z2 * z2
        z2sq = (t + ((t & mask) * nqi & mask) * q) >> bits
        t = x1 * z2sq
        u1 = (t + ((t & mask) * nqi & mask) * q) >> bits
        if u1 >= q:
            u1 -= q
        t = y1 * z2sq
        t = ((t + ((t & mask) * nqi & mask) * q) >> bits) * z2
        s1 = (t + ((t & mask) * nqi & mask) * q) >> bits
        if s1 >= q:
            s1 -= q
        zz = z2
    else:
        t = z1 * z1
        z1sq = (t + ((t & mask) * nqi & mask) * q) >> bits
        t = z2 * z2
        z2sq = (t + ((t & mask) * nqi & mask) * q) >> bits
        t = x1 * z2sq
        u1 = (t + ((t & mask) * nqi & mask) * q) >> bits
        if u1 >= q:
            u1 -= q
        t = x2 * z1sq
        u2 = (t + ((t & mask) * nqi & mask) * q) >> bits
        if u2 >= q:
            u2 -= q
        t = y1 * z2sq
        t = ((t + ((t & mask) * nqi & mask) * q) >> bits) * z2
        s1 = (t + ((t & mask) * nqi & mask) * q) >> bits
        if s1 >= q:
            s1 -= q
        t = y2 * z1sq
        t = ((t + ((t & mask) * nqi & mask) * q) >> bits) * z1
        s2 = (t + ((t & mask) * nqi & mask) * q) >> bits
        if s2 >= q:
            s2 -= q
        t = z1 * z2
        zz = (t + ((t & mask) * nqi & mask) * q) >> bits
    if u1 == u2:
        if s1 != s2:
            return (0, one, 0)
        return _g1m_jac_double(p1)
    h = (u2 - u1) % q
    r = (s2 - s1) % q
    t = h * h
    h2 = (t + ((t & mask) * nqi & mask) * q) >> bits
    t = h * h2
    h3 = (t + ((t & mask) * nqi & mask) * q) >> bits
    t = u1 * h2
    u1h2 = (t + ((t & mask) * nqi & mask) * q) >> bits
    t = r * r
    nx = (((t + ((t & mask) * nqi & mask) * q) >> bits) - h3 - 2 * u1h2) % q
    t = r * (u1h2 - nx + 2 * q)
    ny = (t + ((t & mask) * nqi & mask) * q) >> bits
    t = s1 * h3
    ny = (ny - ((t + ((t & mask) * nqi & mask) * q) >> bits)) % q
    t = h * zz
    nz = (t + ((t & mask) * nqi & mask) * q) >> bits
    if nz >= q:
        nz -= q
    return (nx, ny, nz)


def _g1_core():
    """The active G1 Jacobian core: (add, double, inf, enter, exit)."""
    if _OPTS.montgomery:
        return (
            _g1m_jac_add,
            _g1m_jac_double,
            (0, MONT.r1, 0),
            _g1m_enter,
            _g1m_from_jac,
        )
    return (
        _g1_jac_add,
        _g1_jac_double,
        (0, 1, 0),
        lambda p: (p[0], p[1], 1),
        _g1_from_jac,
    )


# ----- GLV endomorphism (G1) ------------------------------------------------------

_G1_GLV: Optional[Tuple[GLVParams, int]] = None


def _g1_glv() -> Tuple[GLVParams, int]:
    """Lazily paired (GLV parameters, β) with φ(G) = λ·G verified.

    λ and β are primitive cube roots of unity mod r and mod q; each λ
    matches exactly one of the two β candidates, so the pairing is
    fixed by checking the endomorphism against a classic double-and-add
    of the generator once.
    """
    global _G1_GLV
    if _G1_GLV is None:
        params = GLVParams.for_order(CURVE_ORDER)
        acc, addend, k = (0, 1, 0), (G1[0], G1[1], 1), params.lam
        while k:
            if k & 1:
                acc = _g1_jac_add(acc, addend)
            addend = _g1_jac_double(addend)
            k >>= 1
        target = _g1_from_jac(acc)
        beta = cube_root_of_unity(FIELD_MODULUS)
        if (beta * G1[0] % _Q, G1[1]) != target:
            beta = beta * beta % _Q
        if (beta * G1[0] % _Q, G1[1]) != target:
            raise ArithmeticError("no cube root of unity realizes phi(G) = lam*G")
        _G1_GLV = (params, beta)
    return _G1_GLV


def _glv_expand_pairs(pairs):
    """Split each (affine point, scalar) into two half-width pairs.

    Signs fold into point negation so Pippenger only ever sees
    non-negative scalars; k₁ + k₂λ ≡ k (mod r) holds exactly, so the
    expansion never changes the MSM value.
    """
    params, beta = _g1_glv()
    out = []
    for (x, y), s in pairs:
        k1, k2 = params.decompose(s)
        if k1:
            out.append(((x, y if k1 > 0 else -y % _Q), abs(k1)))
        if k2:
            out.append(((x * beta % _Q, y if k2 > 0 else -y % _Q), abs(k2)))
    return out


def g1_add(p1: G1Point, p2: G1Point) -> G1Point:
    """Affine G1 addition (via one Jacobian round trip)."""
    if p1 is None:
        return p2
    if p2 is None:
        return p1
    return _g1_from_jac(_g1_jac_add((p1[0], p1[1], 1), (p2[0], p2[1], 1)))


def g1_mul(point: G1Point, scalar: int) -> G1Point:
    """Scalar multiplication on G1.

    Jacobian double-and-add on the active core; with GLV enabled the
    scalar splits into two ~half-width components that run as an
    interleaved (Shamir) ladder, halving the doubling count.
    """
    scalar %= CURVE_ORDER
    if point is None or scalar == 0:
        return None
    add, double, inf, enter, exit_ = _g1_core()
    if _OPTS.glv:
        params, beta = _g1_glv()
        if scalar.bit_length() > params.max_component_bits():
            k1, k2 = params.decompose(scalar)
            x, y = point
            p1 = enter((x, y if k1 > 0 else -y % _Q))
            p2 = enter((x * beta % _Q, y if k2 > 0 else -y % _Q))
            k1, k2 = abs(k1), abs(k2)
            p12 = add(p1, p2)
            acc = inf
            for i in range(max(k1.bit_length(), k2.bit_length()) - 1, -1, -1):
                acc = double(acc)
                b1 = (k1 >> i) & 1
                b2 = (k2 >> i) & 1
                if b1:
                    acc = add(acc, p12 if b2 else p1)
                elif b2:
                    acc = add(acc, p2)
            return exit_(acc)
    acc = inf
    addend = enter(point)
    while scalar:
        if scalar & 1:
            acc = add(acc, addend)
        addend = double(addend)
        scalar >>= 1
    return exit_(acc)


# ----- G2 Jacobian core (raw int pairs) -------------------------------------------
#
# The G2 hot path runs on flat 6-tuples ``(x0, x1, y0, y1, z0, z1)`` of
# plain ints rather than boxed :class:`FQ2` triples: each FQ2 product
# is a 3-multiply Karatsuba over ints with one ``% q`` per output
# coefficient, and no object allocation per intermediate.

#: Jacobian point at infinity (z = 0).
_G2R_INF = (0, 0, 1, 0, 0, 0)


def _fq2r_mul(a0, a1, b0, b1):
    t0 = a0 * b0
    t1 = a1 * b1
    return (t0 - t1) % _Q, ((a0 + a1) * (b0 + b1) - t0 - t1) % _Q


def _fq2r_sqr(a0, a1):
    return ((a0 + a1) * (a0 - a1)) % _Q, 2 * a0 * a1 % _Q


def _g2_to_raw(point: G2Point):
    if point is None:
        return _G2R_INF
    x, y = point
    return (x.c0, x.c1, y.c0, y.c1, 1, 0)


def _g2r_from_jac(pt) -> G2Point:
    x0, x1, y0, y1, z0, z1 = pt
    if z0 == 0 and z1 == 0:
        return None
    norm = (z0 * z0 + z1 * z1) % _Q
    inv_norm = pow(norm, -1, _Q)
    zi0 = z0 * inv_norm % _Q
    zi1 = -z1 * inv_norm % _Q
    w0, w1 = _fq2r_sqr(zi0, zi1)
    nx0, nx1 = _fq2r_mul(x0, x1, w0, w1)
    w0, w1 = _fq2r_mul(w0, w1, zi0, zi1)
    ny0, ny1 = _fq2r_mul(y0, y1, w0, w1)
    return (FQ2(nx0, nx1), FQ2(ny0, ny1))


def _g2r_is_zero(pt) -> bool:
    return pt[4] == 0 and pt[5] == 0


def _g2r_jac_double(pt):
    x0, x1, y0, y1, z0, z1 = pt
    if (y0 == 0 and y1 == 0) or (z0 == 0 and z1 == 0):
        return _G2R_INF
    w0, w1 = _fq2r_sqr(y0, y1)
    s0, s1 = _fq2r_mul(x0, x1, 4 * w0, 4 * w1)
    m0, m1 = _fq2r_sqr(x0, x1)
    m0, m1 = 3 * m0, 3 * m1
    nx0, nx1 = _fq2r_sqr(m0, m1)
    nx0 = (nx0 - 2 * s0) % _Q
    nx1 = (nx1 - 2 * s1) % _Q
    t0, t1 = _fq2r_sqr(w0, w1)
    ny0, ny1 = _fq2r_mul(m0, m1, s0 - nx0, s1 - nx1)
    ny0 = (ny0 - 8 * t0) % _Q
    ny1 = (ny1 - 8 * t1) % _Q
    nz0, nz1 = _fq2r_mul(2 * y0, 2 * y1, z0, z1)
    return (nx0, nx1, ny0, ny1, nz0, nz1)


def _g2r_jac_add(p1, p2):
    if p1[4] == 0 and p1[5] == 0:
        return p2
    if p2[4] == 0 and p2[5] == 0:
        return p1
    x1a, x1b, y1a, y1b, z1a, z1b = p1
    x2a, x2b, y2a, y2b, z2a, z2b = p2
    # Mixed-add shortcut for an affine (z = 1) operand, as in G1.
    if z2a == 1 and z2b == 0:
        u1a, u1b, s1a, s1b = x1a, x1b, y1a, y1b
        w0, w1 = _fq2r_sqr(z1a, z1b)
        u2a, u2b = _fq2r_mul(x2a, x2b, w0, w1)
        w0, w1 = _fq2r_mul(w0, w1, z1a, z1b)
        s2a, s2b = _fq2r_mul(y2a, y2b, w0, w1)
        zza, zzb = z1a, z1b
    elif z1a == 1 and z1b == 0:
        u2a, u2b, s2a, s2b = x2a, x2b, y2a, y2b
        w0, w1 = _fq2r_sqr(z2a, z2b)
        u1a, u1b = _fq2r_mul(x1a, x1b, w0, w1)
        w0, w1 = _fq2r_mul(w0, w1, z2a, z2b)
        s1a, s1b = _fq2r_mul(y1a, y1b, w0, w1)
        zza, zzb = z2a, z2b
    else:
        w0, w1 = _fq2r_sqr(z2a, z2b)
        u1a, u1b = _fq2r_mul(x1a, x1b, w0, w1)
        w0, w1 = _fq2r_mul(w0, w1, z2a, z2b)
        s1a, s1b = _fq2r_mul(y1a, y1b, w0, w1)
        w0, w1 = _fq2r_sqr(z1a, z1b)
        u2a, u2b = _fq2r_mul(x2a, x2b, w0, w1)
        w0, w1 = _fq2r_mul(w0, w1, z1a, z1b)
        s2a, s2b = _fq2r_mul(y2a, y2b, w0, w1)
        zza, zzb = _fq2r_mul(z1a, z1b, z2a, z2b)
    if u1a == u2a and u1b == u2b:
        if s1a != s2a or s1b != s2b:
            return _G2R_INF
        return _g2r_jac_double(p1)
    h0 = (u2a - u1a) % _Q
    h1 = (u2b - u1b) % _Q
    r0 = (s2a - s1a) % _Q
    r1 = (s2b - s1b) % _Q
    h20, h21 = _fq2r_sqr(h0, h1)
    h30, h31 = _fq2r_mul(h0, h1, h20, h21)
    t0, t1 = _fq2r_mul(u1a, u1b, h20, h21)
    nx0, nx1 = _fq2r_sqr(r0, r1)
    nx0 = (nx0 - h30 - 2 * t0) % _Q
    nx1 = (nx1 - h31 - 2 * t1) % _Q
    ny0, ny1 = _fq2r_mul(r0, r1, t0 - nx0, t1 - nx1)
    w0, w1 = _fq2r_mul(s1a, s1b, h30, h31)
    ny0 = (ny0 - w0) % _Q
    ny1 = (ny1 - w1) % _Q
    nz0, nz1 = _fq2r_mul(h0, h1, zza, zzb)
    return (nx0, nx1, ny0, ny1, nz0, nz1)


def _g2r_jac_mul(pt, scalar: int):
    acc = _G2R_INF
    addend = pt
    while scalar:
        if scalar & 1:
            acc = _g2r_jac_add(acc, addend)
        addend = _g2r_jac_double(addend)
        scalar >>= 1
    return acc


def g2_neg(point: G2Point) -> G2Point:
    if point is None:
        return None
    return (point[0], -point[1])


def g2_double(point: G2Point) -> G2Point:
    if point is None:
        return None
    x, y = point
    if y.is_zero():
        return None
    slope = (x.square() * 3) / (y * 2)
    nx = slope.square() - x * 2
    ny = slope * (x - nx) - y
    return (nx, ny)


def g2_add(p1: G2Point, p2: G2Point) -> G2Point:
    """Affine G2 addition over FQ2."""
    if p1 is None:
        return p2
    if p2 is None:
        return p1
    x1, y1 = p1
    x2, y2 = p2
    if x1 == x2:
        if y1 == y2:
            return g2_double(p1)
        return None
    slope = (y2 - y1) / (x2 - x1)
    nx = slope.square() - x1 - x2
    ny = slope * (x1 - nx) - y1
    return (nx, ny)


def g2_mul(point: G2Point, scalar: int) -> G2Point:
    """Scalar multiplication on G2 (raw-pair Jacobian double-and-add)."""
    scalar %= CURVE_ORDER
    if point is None or scalar == 0:
        return None
    return _g2r_from_jac(_g2r_jac_mul(_g2_to_raw(point), scalar))


def g2_mul_naive(point: G2Point, scalar: int) -> G2Point:
    """Affine double-and-add (one FQ2 inversion per step); reference only."""
    scalar %= CURVE_ORDER
    result: G2Point = None
    addend = point
    while scalar:
        if scalar & 1:
            result = g2_add(result, addend)
        addend = g2_double(addend)
        scalar >>= 1
    return result


# ----- Pippenger multi-scalar multiplication -------------------------------------


def _msm_window_size(n: int) -> int:
    if n < 4:
        return 2
    if n < 16:
        return 3
    if n < 64:
        return 5
    if n < 512:
        return 6
    if n < 4096:
        return 8
    return 10


def _pippenger_jac(pairs, jac_add, jac_double, jac_is_zero, zero, bits=None):
    """Bucket-window MSM over Jacobian pairs [(point_jac, scalar), ...].

    Scalars must already be reduced mod r (or GLV-decomposed) and
    nonzero.  ``bits`` sizes the window sweep; by default it is taken
    from the widest scalar actually present, so short scalars (GLV
    components, small protocol exponents) don't pay for 254-bit sweeps.
    """
    if bits is None:
        bits = max(s.bit_length() for _, s in pairs)
    c = _msm_window_size(len(pairs))
    mask = (1 << c) - 1
    num_windows = (bits + c - 1) // c
    total = zero
    for w in range(num_windows - 1, -1, -1):
        if not jac_is_zero(total):
            for _ in range(c):
                total = jac_double(total)
        shift = w * c
        buckets = [None] * (mask + 1)
        for pt, s in pairs:
            d = (s >> shift) & mask
            if d:
                held = buckets[d]
                buckets[d] = pt if held is None else jac_add(held, pt)
        # Σ d·bucket[d] via the running-sum trick.
        running = None
        acc = None
        for d in range(mask, 0, -1):
            b = buckets[d]
            if b is not None:
                running = b if running is None else jac_add(running, b)
            if running is not None:
                acc = running if acc is None else jac_add(acc, running)
        if acc is not None:
            total = jac_add(total, acc)
    return total


def _msm_pairs(points, scalars, to_jac):
    points = list(points)
    scalars = list(scalars)
    if len(points) != len(scalars):
        raise ValueError(
            f"MSM length mismatch: {len(points)} points vs {len(scalars)} scalars"
        )
    pairs = []
    for pt, s in zip(points, scalars):
        s %= CURVE_ORDER
        if pt is not None and s:
            pairs.append((to_jac(pt), s))
    return pairs


def g1_msm(points, scalars) -> G1Point:
    """Multi-scalar multiplication Σ s_i·P_i on G1 (Pippenger).

    Raises :class:`ValueError` when the two sequences differ in length —
    a silent ``zip`` truncation here would drop terms and produce a
    wrong (e.g. unprovable or unsound) group element.
    """
    if obs.TRACER.enabled:
        obs.count("snark.msm.g1_calls")
    pairs = _msm_pairs(points, scalars, lambda p: p)
    if not pairs:
        return None
    if len(pairs) == 1:
        return g1_mul(*pairs[0])
    if _OPTS.glv:
        params, _ = _g1_glv()
        bound = params.max_component_bits()
        if max(s.bit_length() for _, s in pairs) > bound:
            pairs = _glv_expand_pairs(pairs)
    add, double, inf, enter, exit_ = _g1_core()
    jac_pairs = [(enter(pt), s) for pt, s in pairs]
    return exit_(_pippenger_jac(jac_pairs, add, double, _g1_jac_is_zero, inf))


def g1_msm_naive(points, scalars) -> G1Point:
    """Per-point double-and-add accumulation; the MSM reference oracle."""
    if obs.TRACER.enabled:
        obs.count("snark.msm.g1_naive_calls")
    points = list(points)
    scalars = list(scalars)
    if len(points) != len(scalars):
        raise ValueError(
            f"MSM length mismatch: {len(points)} points vs {len(scalars)} scalars"
        )
    acc = (0, 1, 0)
    for point, scalar in zip(points, scalars):
        scalar %= CURVE_ORDER
        if point is None or scalar == 0:
            continue
        addend = (point[0], point[1], 1)
        partial = (0, 1, 0)
        while scalar:
            if scalar & 1:
                partial = _g1_jac_add(partial, addend)
            addend = _g1_jac_double(addend)
            scalar >>= 1
        acc = _g1_jac_add(acc, partial)
    return _g1_from_jac(acc)


def g2_msm(points, scalars) -> G2Point:
    """Multi-scalar multiplication Σ s_i·P_i on G2 (Pippenger)."""
    if obs.TRACER.enabled:
        obs.count("snark.msm.g2_calls")
    pairs = _msm_pairs(points, scalars, _g2_to_raw)
    if not pairs:
        return None
    if len(pairs) == 1:
        pt, s = pairs[0]
        return _g2r_from_jac(_g2r_jac_mul(pt, s))
    return _g2r_from_jac(
        _pippenger_jac(pairs, _g2r_jac_add, _g2r_jac_double, _g2r_is_zero, _G2R_INF)
    )


def g2_msm_naive(points, scalars) -> G2Point:
    """Per-point scalar multiplication accumulation; reference oracle."""
    if obs.TRACER.enabled:
        obs.count("snark.msm.g2_naive_calls")
    points = list(points)
    scalars = list(scalars)
    if len(points) != len(scalars):
        raise ValueError(
            f"MSM length mismatch: {len(points)} points vs {len(scalars)} scalars"
        )
    acc: G2Point = None
    for point, scalar in zip(points, scalars):
        acc = g2_add(acc, g2_mul(point, scalar))
    return acc


# ----- Fixed-base windowed precomputation ----------------------------------------


class FixedBaseTable:
    """Windowed precomputation for many scalar mults of one fixed base.

    Row i holds the odd/even multiples ``j · 2^(i·w) · B`` for
    ``j ∈ [1, 2^w)``; a 254-bit scalar multiplication then costs one
    Jacobian addition per window (~32 for w=8) instead of ~380
    double/add steps.  Rows are stored in Jacobian coordinates so the
    build needs no field inversions.
    """

    def __init__(self, point, jac_add, jac_double, from_jac, to_jac, window: int) -> None:
        self._jac_add = jac_add
        self._from_jac = from_jac
        self.window = window
        self.point = point
        mask = (1 << window) - 1
        self._mask = mask
        num_windows = (CURVE_ORDER.bit_length() + window - 1) // window
        table: List[list] = []
        base = to_jac(point)
        for _ in range(num_windows):
            row = [base]
            cur = base
            for _ in range(mask - 1):
                cur = jac_add(cur, base)
                row.append(cur)
            table.append(row)
            for _ in range(window):
                base = jac_double(base)
        self._table = table

    def mul_jac(self, scalar: int):
        """The scalar multiple in Jacobian coordinates (or None)."""
        scalar %= CURVE_ORDER
        if scalar == 0:
            return None
        acc = None
        mask = self._mask
        window = self.window
        for row in self._table:
            d = scalar & mask
            scalar >>= window
            if d:
                entry = row[d - 1]
                acc = entry if acc is None else self._jac_add(acc, entry)
            if not scalar:
                break
        return acc

    def mul(self, scalar: int):
        """The affine scalar multiple of the fixed base."""
        acc = self.mul_jac(scalar)
        if acc is None:
            return None
        return self._from_jac(acc)


def g1_fixed_base(point: G1Point, window: int = 8) -> FixedBaseTable:
    """Build a fixed-base table for a G1 point."""
    return FixedBaseTable(
        point,
        _g1_jac_add,
        _g1_jac_double,
        _g1_from_jac,
        lambda p: (p[0], p[1], 1),
        window,
    )


def g2_fixed_base(point: G2Point, window: int = 7) -> FixedBaseTable:
    """Build a fixed-base table for a G2 point."""
    return FixedBaseTable(
        point, _g2r_jac_add, _g2r_jac_double, _g2r_from_jac, _g2_to_raw, window
    )


_G1_GENERATOR_TABLE: Optional[FixedBaseTable] = None
_G2_GENERATOR_TABLE: Optional[FixedBaseTable] = None


def g1_generator_table() -> FixedBaseTable:
    """The process-wide fixed-base table for the G1 generator (lazy)."""
    global _G1_GENERATOR_TABLE
    if _G1_GENERATOR_TABLE is None:
        _G1_GENERATOR_TABLE = g1_fixed_base(G1)
    return _G1_GENERATOR_TABLE


def g2_generator_table() -> FixedBaseTable:
    """The process-wide fixed-base table for the G2 generator (lazy)."""
    global _G2_GENERATOR_TABLE
    if _G2_GENERATOR_TABLE is None:
        _G2_GENERATOR_TABLE = g2_fixed_base(G2)
    return _G2_GENERATOR_TABLE


# ----- serialization -------------------------------------------------------------


def g1_to_bytes(point: G1Point) -> bytes:
    """Serialize a G1 point (64 bytes; infinity encodes as zeros)."""
    if point is None:
        return b"\x00" * 64
    return point[0].to_bytes(32, "big") + point[1].to_bytes(32, "big")


def g1_from_bytes(data: bytes) -> G1Point:
    """Deserialize a G1 point from its canonical 64-byte encoding.

    Coordinate limbs ≥ q are rejected (see :func:`fq_from_bytes`):
    reducing them silently would give every point multiple distinct
    wire encodings, i.e. proof/vk bytes would be malleable.
    """
    if len(data) != 64:
        raise ValueError("G1 encoding must be 64 bytes")
    x = fq_from_bytes(data[:32])
    y = fq_from_bytes(data[32:])
    if x == 0 and y == 0:
        return None
    point = (x, y)
    if not is_on_g1(point):
        raise ValueError("bytes do not encode a G1 point")
    return point


def g2_to_bytes(point: G2Point) -> bytes:
    """Serialize a G2 point (128 bytes; infinity encodes as zeros)."""
    if point is None:
        return b"\x00" * 128
    return point[0].to_bytes() + point[1].to_bytes()


def g2_from_bytes(data: bytes) -> G2Point:
    """Deserialize and fully validate a G2 point.

    Beyond the curve equation this enforces the r-torsion subgroup
    check: the twist's cofactor is huge, and accepting an off-subgroup
    proof element (e.g. Groth16's B) breaks the pairing equation's
    soundness assumptions.
    """
    if len(data) != 128:
        raise ValueError("G2 encoding must be 128 bytes")
    x = FQ2.from_bytes(data[:64])
    y = FQ2.from_bytes(data[64:])
    if x.is_zero() and y.is_zero():
        return None
    point = (x, y)
    if not is_on_g2(point):
        raise ValueError("bytes do not encode a G2 point")
    if not is_in_g2_subgroup(point):
        raise ValueError("G2 point is not in the r-order subgroup")
    return point
