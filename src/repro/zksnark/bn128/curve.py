"""BN128 group operations.

G1 points are affine ``(x, y)`` int pairs (or ``None`` for infinity) on
``y² = x³ + 3`` over FQ; G2 points are affine pairs of :class:`FQ2` on
the twist ``y² = x³ + 3/(9+i)``.  All scalar multiplication and
multi-scalar multiplication runs in Jacobian coordinates (no field
inversions on the hot path); MSMs use Pippenger bucket windowing and
repeated multiplications of a fixed base go through precomputed
windowed tables (:class:`FixedBaseTable`).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro import observability as obs
from repro.zksnark.bn128.fq import CURVE_ORDER, FIELD_MODULUS
from repro.zksnark.bn128.fq2 import FQ2

_Q = FIELD_MODULUS

G1Point = Optional[Tuple[int, int]]
G2Point = Optional[Tuple[FQ2, FQ2]]

#: Curve coefficient b for G1.
B1 = 3
#: Twist coefficient b2 = 3 / (9 + i) for G2.
B2 = FQ2(3, 0) / FQ2(9, 1)

#: Canonical generators (matching Ethereum's alt_bn128 precompiles).
G1: G1Point = (1, 2)
G2: G2Point = (
    FQ2(
        10857046999023057135944570762232829481370756359578518086990519993285655852781,
        11559732032986387107991004021392285783925812861821192530917403151452391805634,
    ),
    FQ2(
        8495653923123431417604973247489272438418190587263600148770280649306958101930,
        4082367875863433681332203403145435568316851327593401208105741076214120093531,
    ),
)


def is_on_g1(point: G1Point) -> bool:
    """Membership test for G1 (affine curve equation).

    G1 has cofactor 1, so the curve equation alone IS the subgroup
    check.
    """
    if point is None:
        return True
    x, y = point
    return (y * y - x * x * x - B1) % _Q == 0


def is_on_g2(point: G2Point) -> bool:
    """Curve-equation test for the twist.

    This is NOT a subgroup check: the twist has a large cofactor, so a
    point can satisfy the curve equation while lying outside the
    r-order subgroup.  Use :func:`is_in_g2_subgroup` (as
    :func:`g2_from_bytes` does) whenever the point comes from an
    untrusted source.
    """
    if point is None:
        return True
    x, y = point
    return y.square() - x.square() * x == B2


def is_in_g2_subgroup(point: G2Point) -> bool:
    """Full G2 membership: curve equation plus r-torsion.

    The twist's group order is c·r with a ~254-bit cofactor c, so the
    curve equation must be complemented by an order check
    ``r·P = O``; without it a malicious prover can smuggle a point of
    the wrong order into the pairing.
    """
    if point is None:
        return True
    if not is_on_g2(point):
        return False
    return _g2_jac_mul(_g2_to_jac(point), CURVE_ORDER)[2].is_zero()


def g1_neg(point: G1Point) -> G1Point:
    if point is None:
        return None
    return (point[0], -point[1] % _Q)


# ----- G1 Jacobian core ----------------------------------------------------------


def _g1_jac_double(pt):
    x, y, z = pt
    if y == 0 or z == 0:
        return (0, 1, 0)
    ysq = (y * y) % _Q
    s = (4 * x * ysq) % _Q
    m = (3 * x * x) % _Q
    nx = (m * m - 2 * s) % _Q
    ny = (m * (s - nx) - 8 * ysq * ysq) % _Q
    nz = (2 * y * z) % _Q
    return (nx, ny, nz)


def _g1_jac_add(p1, p2):
    if p1[2] == 0:
        return p2
    if p2[2] == 0:
        return p1
    x1, y1, z1 = p1
    x2, y2, z2 = p2
    z1sq = (z1 * z1) % _Q
    z2sq = (z2 * z2) % _Q
    u1 = (x1 * z2sq) % _Q
    u2 = (x2 * z1sq) % _Q
    s1 = (y1 * z2sq * z2) % _Q
    s2 = (y2 * z1sq * z1) % _Q
    if u1 == u2:
        if s1 != s2:
            return (0, 1, 0)
        return _g1_jac_double(p1)
    h = (u2 - u1) % _Q
    r = (s2 - s1) % _Q
    h2 = (h * h) % _Q
    h3 = (h * h2) % _Q
    u1h2 = (u1 * h2) % _Q
    nx = (r * r - h3 - 2 * u1h2) % _Q
    ny = (r * (u1h2 - nx) - s1 * h3) % _Q
    nz = (h * z1 * z2) % _Q
    return (nx, ny, nz)


def _g1_from_jac(pt) -> G1Point:
    x, y, z = pt
    if z == 0:
        return None
    zi = pow(z, -1, _Q)
    zi2 = (zi * zi) % _Q
    return ((x * zi2) % _Q, (y * zi2 * zi) % _Q)


def _g1_jac_is_zero(pt) -> bool:
    return pt[2] == 0


def g1_add(p1: G1Point, p2: G1Point) -> G1Point:
    """Affine G1 addition (via one Jacobian round trip)."""
    if p1 is None:
        return p2
    if p2 is None:
        return p1
    return _g1_from_jac(_g1_jac_add((p1[0], p1[1], 1), (p2[0], p2[1], 1)))


def g1_mul(point: G1Point, scalar: int) -> G1Point:
    """Scalar multiplication on G1 (Jacobian double-and-add)."""
    scalar %= CURVE_ORDER
    if point is None or scalar == 0:
        return None
    acc = (0, 1, 0)
    addend = (point[0], point[1], 1)
    while scalar:
        if scalar & 1:
            acc = _g1_jac_add(acc, addend)
        addend = _g1_jac_double(addend)
        scalar >>= 1
    return _g1_from_jac(acc)


# ----- G2 Jacobian core ----------------------------------------------------------

_FQ2_ZERO = FQ2(0, 0)
_FQ2_ONE = FQ2(1, 0)
_G2_JAC_INF = (_FQ2_ZERO, _FQ2_ONE, _FQ2_ZERO)


def _g2_to_jac(point: G2Point):
    if point is None:
        return _G2_JAC_INF
    return (point[0], point[1], _FQ2_ONE)


def _g2_jac_double(pt):
    x, y, z = pt
    if y.is_zero() or z.is_zero():
        return _G2_JAC_INF
    ysq = y.square()
    s = (x * ysq) * 4
    m = x.square() * 3
    nx = m.square() - s - s
    ny = m * (s - nx) - ysq.square() * 8
    nz = (y * z) * 2
    return (nx, ny, nz)


def _g2_jac_add(p1, p2):
    if p1[2].is_zero():
        return p2
    if p2[2].is_zero():
        return p1
    x1, y1, z1 = p1
    x2, y2, z2 = p2
    z1sq = z1.square()
    z2sq = z2.square()
    u1 = x1 * z2sq
    u2 = x2 * z1sq
    s1 = y1 * z2sq * z2
    s2 = y2 * z1sq * z1
    if u1 == u2:
        if s1 != s2:
            return _G2_JAC_INF
        return _g2_jac_double(p1)
    h = u2 - u1
    r = s2 - s1
    h2 = h.square()
    h3 = h * h2
    u1h2 = u1 * h2
    nx = r.square() - h3 - u1h2 * 2
    ny = r * (u1h2 - nx) - s1 * h3
    nz = h * z1 * z2
    return (nx, ny, nz)


def _g2_from_jac(pt) -> G2Point:
    x, y, z = pt
    if z.is_zero():
        return None
    zi = z.inverse()
    zi2 = zi.square()
    return (x * zi2, y * zi2 * zi)


def _g2_jac_is_zero(pt) -> bool:
    return pt[2].is_zero()


def _g2_jac_mul(pt, scalar: int):
    acc = _G2_JAC_INF
    addend = pt
    while scalar:
        if scalar & 1:
            acc = _g2_jac_add(acc, addend)
        addend = _g2_jac_double(addend)
        scalar >>= 1
    return acc


def g2_neg(point: G2Point) -> G2Point:
    if point is None:
        return None
    return (point[0], -point[1])


def g2_double(point: G2Point) -> G2Point:
    if point is None:
        return None
    x, y = point
    if y.is_zero():
        return None
    slope = (x.square() * 3) / (y * 2)
    nx = slope.square() - x * 2
    ny = slope * (x - nx) - y
    return (nx, ny)


def g2_add(p1: G2Point, p2: G2Point) -> G2Point:
    """Affine G2 addition over FQ2."""
    if p1 is None:
        return p2
    if p2 is None:
        return p1
    x1, y1 = p1
    x2, y2 = p2
    if x1 == x2:
        if y1 == y2:
            return g2_double(p1)
        return None
    slope = (y2 - y1) / (x2 - x1)
    nx = slope.square() - x1 - x2
    ny = slope * (x1 - nx) - y1
    return (nx, ny)


def g2_mul(point: G2Point, scalar: int) -> G2Point:
    """Scalar multiplication on G2 (Jacobian double-and-add)."""
    scalar %= CURVE_ORDER
    if point is None or scalar == 0:
        return None
    return _g2_from_jac(_g2_jac_mul(_g2_to_jac(point), scalar))


def g2_mul_naive(point: G2Point, scalar: int) -> G2Point:
    """Affine double-and-add (one FQ2 inversion per step); reference only."""
    scalar %= CURVE_ORDER
    result: G2Point = None
    addend = point
    while scalar:
        if scalar & 1:
            result = g2_add(result, addend)
        addend = g2_double(addend)
        scalar >>= 1
    return result


# ----- Pippenger multi-scalar multiplication -------------------------------------


def _msm_window_size(n: int) -> int:
    if n < 4:
        return 2
    if n < 16:
        return 3
    if n < 64:
        return 5
    if n < 512:
        return 6
    if n < 4096:
        return 8
    return 10


def _pippenger_jac(pairs, jac_add, jac_double, jac_is_zero, zero):
    """Bucket-window MSM over Jacobian pairs [(point_jac, scalar), ...].

    Scalars must already be reduced mod r and nonzero.
    """
    c = _msm_window_size(len(pairs))
    mask = (1 << c) - 1
    num_windows = (CURVE_ORDER.bit_length() + c - 1) // c
    total = zero
    for w in range(num_windows - 1, -1, -1):
        if not jac_is_zero(total):
            for _ in range(c):
                total = jac_double(total)
        shift = w * c
        buckets = [None] * (mask + 1)
        for pt, s in pairs:
            d = (s >> shift) & mask
            if d:
                held = buckets[d]
                buckets[d] = pt if held is None else jac_add(held, pt)
        # Σ d·bucket[d] via the running-sum trick.
        running = None
        acc = None
        for d in range(mask, 0, -1):
            b = buckets[d]
            if b is not None:
                running = b if running is None else jac_add(running, b)
            if running is not None:
                acc = running if acc is None else jac_add(acc, running)
        if acc is not None:
            total = jac_add(total, acc)
    return total


def _msm_pairs(points, scalars, to_jac):
    points = list(points)
    scalars = list(scalars)
    if len(points) != len(scalars):
        raise ValueError(
            f"MSM length mismatch: {len(points)} points vs {len(scalars)} scalars"
        )
    pairs = []
    for pt, s in zip(points, scalars):
        s %= CURVE_ORDER
        if pt is not None and s:
            pairs.append((to_jac(pt), s))
    return pairs


def g1_msm(points, scalars) -> G1Point:
    """Multi-scalar multiplication Σ s_i·P_i on G1 (Pippenger).

    Raises :class:`ValueError` when the two sequences differ in length —
    a silent ``zip`` truncation here would drop terms and produce a
    wrong (e.g. unprovable or unsound) group element.
    """
    if obs.TRACER.enabled:
        obs.count("snark.msm.g1_calls")
    pairs = _msm_pairs(points, scalars, lambda p: (p[0], p[1], 1))
    if not pairs:
        return None
    if len(pairs) == 1:
        pt, s = pairs[0]
        return g1_mul((pt[0], pt[1]), s)
    return _g1_from_jac(
        _pippenger_jac(pairs, _g1_jac_add, _g1_jac_double, _g1_jac_is_zero, (0, 1, 0))
    )


def g1_msm_naive(points, scalars) -> G1Point:
    """Per-point double-and-add accumulation; the MSM reference oracle."""
    if obs.TRACER.enabled:
        obs.count("snark.msm.g1_naive_calls")
    points = list(points)
    scalars = list(scalars)
    if len(points) != len(scalars):
        raise ValueError(
            f"MSM length mismatch: {len(points)} points vs {len(scalars)} scalars"
        )
    acc = (0, 1, 0)
    for point, scalar in zip(points, scalars):
        scalar %= CURVE_ORDER
        if point is None or scalar == 0:
            continue
        addend = (point[0], point[1], 1)
        partial = (0, 1, 0)
        while scalar:
            if scalar & 1:
                partial = _g1_jac_add(partial, addend)
            addend = _g1_jac_double(addend)
            scalar >>= 1
        acc = _g1_jac_add(acc, partial)
    return _g1_from_jac(acc)


def g2_msm(points, scalars) -> G2Point:
    """Multi-scalar multiplication Σ s_i·P_i on G2 (Pippenger)."""
    if obs.TRACER.enabled:
        obs.count("snark.msm.g2_calls")
    pairs = _msm_pairs(points, scalars, _g2_to_jac)
    if not pairs:
        return None
    if len(pairs) == 1:
        pt, s = pairs[0]
        return _g2_from_jac(_g2_jac_mul(pt, s))
    return _g2_from_jac(
        _pippenger_jac(pairs, _g2_jac_add, _g2_jac_double, _g2_jac_is_zero, _G2_JAC_INF)
    )


def g2_msm_naive(points, scalars) -> G2Point:
    """Per-point scalar multiplication accumulation; reference oracle."""
    if obs.TRACER.enabled:
        obs.count("snark.msm.g2_naive_calls")
    points = list(points)
    scalars = list(scalars)
    if len(points) != len(scalars):
        raise ValueError(
            f"MSM length mismatch: {len(points)} points vs {len(scalars)} scalars"
        )
    acc: G2Point = None
    for point, scalar in zip(points, scalars):
        acc = g2_add(acc, g2_mul(point, scalar))
    return acc


# ----- Fixed-base windowed precomputation ----------------------------------------


class FixedBaseTable:
    """Windowed precomputation for many scalar mults of one fixed base.

    Row i holds the odd/even multiples ``j · 2^(i·w) · B`` for
    ``j ∈ [1, 2^w)``; a 254-bit scalar multiplication then costs one
    Jacobian addition per window (~32 for w=8) instead of ~380
    double/add steps.  Rows are stored in Jacobian coordinates so the
    build needs no field inversions.
    """

    def __init__(self, point, jac_add, jac_double, from_jac, to_jac, window: int) -> None:
        self._jac_add = jac_add
        self._from_jac = from_jac
        self.window = window
        self.point = point
        mask = (1 << window) - 1
        self._mask = mask
        num_windows = (CURVE_ORDER.bit_length() + window - 1) // window
        table: List[list] = []
        base = to_jac(point)
        for _ in range(num_windows):
            row = [base]
            cur = base
            for _ in range(mask - 1):
                cur = jac_add(cur, base)
                row.append(cur)
            table.append(row)
            for _ in range(window):
                base = jac_double(base)
        self._table = table

    def mul_jac(self, scalar: int):
        """The scalar multiple in Jacobian coordinates (or None)."""
        scalar %= CURVE_ORDER
        if scalar == 0:
            return None
        acc = None
        mask = self._mask
        window = self.window
        for row in self._table:
            d = scalar & mask
            scalar >>= window
            if d:
                entry = row[d - 1]
                acc = entry if acc is None else self._jac_add(acc, entry)
            if not scalar:
                break
        return acc

    def mul(self, scalar: int):
        """The affine scalar multiple of the fixed base."""
        acc = self.mul_jac(scalar)
        if acc is None:
            return None
        return self._from_jac(acc)


def g1_fixed_base(point: G1Point, window: int = 8) -> FixedBaseTable:
    """Build a fixed-base table for a G1 point."""
    return FixedBaseTable(
        point,
        _g1_jac_add,
        _g1_jac_double,
        _g1_from_jac,
        lambda p: (p[0], p[1], 1),
        window,
    )


def g2_fixed_base(point: G2Point, window: int = 7) -> FixedBaseTable:
    """Build a fixed-base table for a G2 point."""
    return FixedBaseTable(
        point, _g2_jac_add, _g2_jac_double, _g2_from_jac, _g2_to_jac, window
    )


_G1_GENERATOR_TABLE: Optional[FixedBaseTable] = None
_G2_GENERATOR_TABLE: Optional[FixedBaseTable] = None


def g1_generator_table() -> FixedBaseTable:
    """The process-wide fixed-base table for the G1 generator (lazy)."""
    global _G1_GENERATOR_TABLE
    if _G1_GENERATOR_TABLE is None:
        _G1_GENERATOR_TABLE = g1_fixed_base(G1)
    return _G1_GENERATOR_TABLE


def g2_generator_table() -> FixedBaseTable:
    """The process-wide fixed-base table for the G2 generator (lazy)."""
    global _G2_GENERATOR_TABLE
    if _G2_GENERATOR_TABLE is None:
        _G2_GENERATOR_TABLE = g2_fixed_base(G2)
    return _G2_GENERATOR_TABLE


# ----- serialization -------------------------------------------------------------


def g1_to_bytes(point: G1Point) -> bytes:
    """Serialize a G1 point (64 bytes; infinity encodes as zeros)."""
    if point is None:
        return b"\x00" * 64
    return point[0].to_bytes(32, "big") + point[1].to_bytes(32, "big")


def g1_from_bytes(data: bytes) -> G1Point:
    if len(data) != 64:
        raise ValueError("G1 encoding must be 64 bytes")
    x = int.from_bytes(data[:32], "big")
    y = int.from_bytes(data[32:], "big")
    if x == 0 and y == 0:
        return None
    point = (x, y)
    if not is_on_g1(point):
        raise ValueError("bytes do not encode a G1 point")
    return point


def g2_to_bytes(point: G2Point) -> bytes:
    """Serialize a G2 point (128 bytes; infinity encodes as zeros)."""
    if point is None:
        return b"\x00" * 128
    return point[0].to_bytes() + point[1].to_bytes()


def g2_from_bytes(data: bytes) -> G2Point:
    """Deserialize and fully validate a G2 point.

    Beyond the curve equation this enforces the r-torsion subgroup
    check: the twist's cofactor is huge, and accepting an off-subgroup
    proof element (e.g. Groth16's B) breaks the pairing equation's
    soundness assumptions.
    """
    if len(data) != 128:
        raise ValueError("G2 encoding must be 128 bytes")
    x = FQ2.from_bytes(data[:64])
    y = FQ2.from_bytes(data[64:])
    if x.is_zero() and y.is_zero():
        return None
    point = (x, y)
    if not is_on_g2(point):
        raise ValueError("bytes do not encode a G2 point")
    if not is_in_g2_subgroup(point):
        raise ValueError("G2 point is not in the r-order subgroup")
    return point
