"""BN128 group operations.

G1 points are affine ``(x, y)`` int pairs (or ``None`` for infinity) on
``y² = x³ + 3`` over FQ; scalar multiplication runs in Jacobian
coordinates.  G2 points are affine pairs of :class:`FQ2` on the twist
``y² = x³ + 3/(9+i)``.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.zksnark.bn128.fq import CURVE_ORDER, FIELD_MODULUS
from repro.zksnark.bn128.fq2 import FQ2

_Q = FIELD_MODULUS

G1Point = Optional[Tuple[int, int]]
G2Point = Optional[Tuple[FQ2, FQ2]]

#: Curve coefficient b for G1.
B1 = 3
#: Twist coefficient b2 = 3 / (9 + i) for G2.
B2 = FQ2(3, 0) / FQ2(9, 1)

#: Canonical generators (matching Ethereum's alt_bn128 precompiles).
G1: G1Point = (1, 2)
G2: G2Point = (
    FQ2(
        10857046999023057135944570762232829481370756359578518086990519993285655852781,
        11559732032986387107991004021392285783925812861821192530917403151452391805634,
    ),
    FQ2(
        8495653923123431417604973247489272438418190587263600148770280649306958101930,
        4082367875863433681332203403145435568316851327593401208105741076214120093531,
    ),
)


def is_on_g1(point: G1Point) -> bool:
    """Membership test for G1 (affine curve equation)."""
    if point is None:
        return True
    x, y = point
    return (y * y - x * x * x - B1) % _Q == 0


def is_on_g2(point: G2Point) -> bool:
    """Curve-equation test for the twist (subgroup check via cofactor-free order)."""
    if point is None:
        return True
    x, y = point
    return y.square() - x.square() * x == B2


def g1_neg(point: G1Point) -> G1Point:
    if point is None:
        return None
    return (point[0], -point[1] % _Q)


def _g1_jac_double(pt):
    x, y, z = pt
    if y == 0 or z == 0:
        return (0, 1, 0)
    ysq = (y * y) % _Q
    s = (4 * x * ysq) % _Q
    m = (3 * x * x) % _Q
    nx = (m * m - 2 * s) % _Q
    ny = (m * (s - nx) - 8 * ysq * ysq) % _Q
    nz = (2 * y * z) % _Q
    return (nx, ny, nz)


def _g1_jac_add(p1, p2):
    if p1[2] == 0:
        return p2
    if p2[2] == 0:
        return p1
    x1, y1, z1 = p1
    x2, y2, z2 = p2
    z1sq = (z1 * z1) % _Q
    z2sq = (z2 * z2) % _Q
    u1 = (x1 * z2sq) % _Q
    u2 = (x2 * z1sq) % _Q
    s1 = (y1 * z2sq * z2) % _Q
    s2 = (y2 * z1sq * z1) % _Q
    if u1 == u2:
        if s1 != s2:
            return (0, 1, 0)
        return _g1_jac_double(p1)
    h = (u2 - u1) % _Q
    r = (s2 - s1) % _Q
    h2 = (h * h) % _Q
    h3 = (h * h2) % _Q
    u1h2 = (u1 * h2) % _Q
    nx = (r * r - h3 - 2 * u1h2) % _Q
    ny = (r * (u1h2 - nx) - s1 * h3) % _Q
    nz = (h * z1 * z2) % _Q
    return (nx, ny, nz)


def _g1_from_jac(pt) -> G1Point:
    x, y, z = pt
    if z == 0:
        return None
    zi = pow(z, -1, _Q)
    zi2 = (zi * zi) % _Q
    return ((x * zi2) % _Q, (y * zi2 * zi) % _Q)


def g1_add(p1: G1Point, p2: G1Point) -> G1Point:
    """Affine G1 addition (via one Jacobian round trip)."""
    if p1 is None:
        return p2
    if p2 is None:
        return p1
    return _g1_from_jac(_g1_jac_add((p1[0], p1[1], 1), (p2[0], p2[1], 1)))


def g1_mul(point: G1Point, scalar: int) -> G1Point:
    """Scalar multiplication on G1 (Jacobian double-and-add)."""
    scalar %= CURVE_ORDER
    if point is None or scalar == 0:
        return None
    acc = (0, 1, 0)
    addend = (point[0], point[1], 1)
    while scalar:
        if scalar & 1:
            acc = _g1_jac_add(acc, addend)
        addend = _g1_jac_double(addend)
        scalar >>= 1
    return _g1_from_jac(acc)


def g1_msm(points, scalars) -> G1Point:
    """Multi-scalar multiplication Σ s_i·P_i (simple Jacobian accumulation)."""
    acc = (0, 1, 0)
    for point, scalar in zip(points, scalars):
        scalar %= CURVE_ORDER
        if point is None or scalar == 0:
            continue
        addend = (point[0], point[1], 1)
        partial = (0, 1, 0)
        while scalar:
            if scalar & 1:
                partial = _g1_jac_add(partial, addend)
            addend = _g1_jac_double(addend)
            scalar >>= 1
        acc = _g1_jac_add(acc, partial)
    return _g1_from_jac(acc)


def g2_neg(point: G2Point) -> G2Point:
    if point is None:
        return None
    return (point[0], -point[1])


def g2_double(point: G2Point) -> G2Point:
    if point is None:
        return None
    x, y = point
    if y.is_zero():
        return None
    slope = (x.square() * 3) / (y * 2)
    nx = slope.square() - x * 2
    ny = slope * (x - nx) - y
    return (nx, ny)


def g2_add(p1: G2Point, p2: G2Point) -> G2Point:
    """Affine G2 addition over FQ2."""
    if p1 is None:
        return p2
    if p2 is None:
        return p1
    x1, y1 = p1
    x2, y2 = p2
    if x1 == x2:
        if y1 == y2:
            return g2_double(p1)
        return None
    slope = (y2 - y1) / (x2 - x1)
    nx = slope.square() - x1 - x2
    ny = slope * (x1 - nx) - y1
    return (nx, ny)


def g2_mul(point: G2Point, scalar: int) -> G2Point:
    """Scalar multiplication on G2 (affine double-and-add)."""
    scalar %= CURVE_ORDER
    result: G2Point = None
    addend = point
    while scalar:
        if scalar & 1:
            result = g2_add(result, addend)
        addend = g2_double(addend)
        scalar >>= 1
    return result


def g1_to_bytes(point: G1Point) -> bytes:
    """Serialize a G1 point (64 bytes; infinity encodes as zeros)."""
    if point is None:
        return b"\x00" * 64
    return point[0].to_bytes(32, "big") + point[1].to_bytes(32, "big")


def g1_from_bytes(data: bytes) -> G1Point:
    if len(data) != 64:
        raise ValueError("G1 encoding must be 64 bytes")
    x = int.from_bytes(data[:32], "big")
    y = int.from_bytes(data[32:], "big")
    if x == 0 and y == 0:
        return None
    point = (x, y)
    if not is_on_g1(point):
        raise ValueError("bytes do not encode a G1 point")
    return point


def g2_to_bytes(point: G2Point) -> bytes:
    """Serialize a G2 point (128 bytes; infinity encodes as zeros)."""
    if point is None:
        return b"\x00" * 128
    return point[0].to_bytes() + point[1].to_bytes()


def g2_from_bytes(data: bytes) -> G2Point:
    if len(data) != 128:
        raise ValueError("G2 encoding must be 128 bytes")
    x = FQ2.from_bytes(data[:64])
    y = FQ2.from_bytes(data[64:])
    if x.is_zero() and y.is_zero():
        return None
    point = (x, y)
    if not is_on_g2(point):
        raise ValueError("bytes do not encode a G2 point")
    return point
