"""FQ12 = FQ[w] / (w^12 − 18·w^6 + 82): the pairing target field.

Elements are fixed 12-tuples of base-field ints.  Multiplication splits
the operands at w^6 and runs one level of Karatsuba (three 6-coefficient
schoolbook products, 108 base multiplies instead of 144) with lazy
reduction — coefficients stay unreduced integers until a single ``% q``
pass in the constructor; squaring additionally exploits product symmetry
(63 multiplies).  Inversion runs the extended Euclid algorithm in FQ[w].
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.zksnark.bn128.fq import FIELD_MODULUS, MONT

_Q = FIELD_MODULUS
_DEGREE = 12
#: Modulus polynomial coefficients of w^12 - 18 w^6 + 82.
MODULUS_COEFFS = (82, 0, 0, 0, 0, 0, -18, 0, 0, 0, 0, 0)


class FQ12:
    """An element of FQ12 as 12 base-field coefficients (low first)."""

    __slots__ = ("coeffs",)

    def __init__(self, coeffs: Sequence[int]) -> None:
        if len(coeffs) != _DEGREE:
            raise ValueError("FQ12 needs exactly 12 coefficients")
        self.coeffs = tuple(c % _Q for c in coeffs)

    @classmethod
    def zero(cls) -> "FQ12":
        return cls((0,) * _DEGREE)

    @classmethod
    def one(cls) -> "FQ12":
        return cls((1,) + (0,) * (_DEGREE - 1))

    @classmethod
    def from_fq(cls, value: int) -> "FQ12":
        return cls((value,) + (0,) * (_DEGREE - 1))

    def __add__(self, other: "FQ12") -> "FQ12":
        return FQ12([a + b for a, b in zip(self.coeffs, other.coeffs)])

    def __sub__(self, other: "FQ12") -> "FQ12":
        return FQ12([a - b for a, b in zip(self.coeffs, other.coeffs)])

    def __neg__(self) -> "FQ12":
        return FQ12([-a for a in self.coeffs])

    def __mul__(self, other) -> "FQ12":
        if isinstance(other, int):
            return FQ12([a * other for a in self.coeffs])
        a = self.coeffs
        b = other.coeffs
        # One Karatsuba level at the w^6 split: three 6-coefficient
        # schoolbook products (108 base multiplies vs 144), coefficients
        # kept as unreduced ints until the constructor's single % q pass.
        a_lo, a_hi = a[:6], a[6:]
        b_lo, b_hi = b[:6], b[6:]
        t0 = _poly6_mul(a_lo, b_lo)
        t2 = _poly6_mul(a_hi, b_hi)
        tm = _poly6_mul(
            tuple(x + y for x, y in zip(a_lo, a_hi)),
            tuple(x + y for x, y in zip(b_lo, b_hi)),
        )
        return FQ12(_combine_karatsuba(t0, tm, t2))

    __rmul__ = __mul__

    def square(self) -> "FQ12":
        # Karatsuba split with symmetric 6-coefficient squares: 63 base
        # multiplies instead of the general product's 108.
        a = self.coeffs
        a_lo, a_hi = a[:6], a[6:]
        t0 = _poly6_sqr(a_lo)
        t2 = _poly6_sqr(a_hi)
        tm = _poly6_sqr(tuple(x + y for x, y in zip(a_lo, a_hi)))
        return FQ12(_combine_karatsuba(t0, tm, t2))

    def __pow__(self, exponent: int) -> "FQ12":
        if exponent < 0:
            return self.inverse() ** (-exponent)
        result = FQ12.one()
        base = self
        while exponent:
            if exponent & 1:
                result = result * base
            base = base.square()
            exponent >>= 1
        return result

    def mul_sparse(self, items) -> "FQ12":
        """Multiply by a sparse element given as ``(position, coeff)`` pairs.

        The Miller loop's line functions have ≤5 nonzero coefficients,
        so multiplying them in sparse form costs ~5·12 base-field
        products instead of the full 144.
        """
        a = self.coeffs
        prod: List[int] = [0] * (2 * _DEGREE - 1)
        for pos, v in items:
            v %= _Q
            if v == 0:
                continue
            for j in range(_DEGREE):
                prod[pos + j] += v * a[j]
        for i in range(2 * _DEGREE - 2, _DEGREE - 1, -1):
            top = prod[i]
            if top == 0:
                continue
            prod[i] = 0
            prod[i - 6] += 18 * top
            prod[i - 12] -= 82 * top
        return FQ12(prod[:_DEGREE])

    def frobenius(self, power: int = 1) -> "FQ12":
        """The q^power Frobenius x ↦ x^(q^power).

        Base-field coefficients are Frobenius-fixed, so
        ``x^(q^p) = Σ c_i · (w^(q^p))^i`` — a linear map applied via the
        precomputed images of the powers of w.
        """
        power %= _DEGREE
        if power == 0:
            return self
        table = _frobenius_table(power)
        out = [0] * _DEGREE
        for i, c in enumerate(self.coeffs):
            if c == 0:
                continue
            w_coeffs = table[i]
            for j in range(_DEGREE):
                out[j] += c * w_coeffs[j]
        return FQ12(out)

    def inverse(self) -> "FQ12":
        """Extended Euclid in FQ[w] against the modulus polynomial."""
        if all(c == 0 for c in self.coeffs):
            raise ZeroDivisionError("inverse of zero in FQ12")
        return _poly_inverse(self.coeffs)

    def conjugate(self) -> "FQ12":
        """Negate odd coefficients (the w → −w automorphism = q^6 Frobenius)."""
        return FQ12(
            [c if i % 2 == 0 else -c for i, c in enumerate(self.coeffs)]
        )

    def is_one(self) -> bool:
        return self.coeffs[0] == 1 and all(c == 0 for c in self.coeffs[1:])

    def __eq__(self, other) -> bool:
        if not isinstance(other, FQ12):
            return NotImplemented
        return self.coeffs == other.coeffs

    def __hash__(self) -> int:
        return hash(self.coeffs)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FQ12({list(self.coeffs)})"

    def to_bytes(self) -> bytes:
        return b"".join(c.to_bytes(32, "big") for c in self.coeffs)


def _poly6_mul(a: Sequence[int], b: Sequence[int]) -> List[int]:
    """Unreduced schoolbook product of two 6-coefficient halves."""
    out = [0] * 11
    for i in range(6):
        ai = a[i]
        if ai:
            for j in range(6):
                out[i + j] += ai * b[j]
    return out


def _poly6_sqr(a: Sequence[int]) -> List[int]:
    """Unreduced square of a 6-coefficient half (21 multiplies)."""
    out = [0] * 11
    for i in range(6):
        ai = a[i]
        if ai:
            out[2 * i] += ai * ai
            doubled = 2 * ai
            for j in range(i + 1, 6):
                out[i + j] += doubled * a[j]
    return out


def _combine_karatsuba(
    t0: Sequence[int], tm: Sequence[int], t2: Sequence[int]
) -> List[int]:
    """Assemble t0 + (tm−t0−t2)·w^6 + t2·w^12 and fold w^12 = 18w^6 − 82."""
    prod = [0] * 23
    for i in range(11):
        prod[i] += t0[i]
        prod[i + 6] += tm[i] - t0[i] - t2[i]
        prod[i + 12] += t2[i]
    for i in range(22, 11, -1):
        top = prod[i]
        if top:
            prod[i - 6] += 18 * top
            prod[i - 12] -= 82 * top
    return prod[:12]


# ----- Montgomery-domain coefficient vectors ----------------------------------
#
# Provided for the representation-level toggle axis: FQ12 products in
# the Montgomery domain pay one REDC per base multiply, whereas the lazy
# schoolbook above pays raw integer multiplies plus a single % q pass
# per output coefficient — measurably cheaper on CPython big ints.  The
# helpers exist so the differential sweep can pin both representations
# to each other; the pairing hot path intentionally stays lazy.


def fq12_to_mont(value: "FQ12") -> Tuple[int, ...]:
    """An FQ12 element as a tuple of Montgomery-domain coefficients."""
    return tuple(MONT.to_mont(c) for c in value.coeffs)


def fq12_from_mont(coeffs: Sequence[int]) -> "FQ12":
    """Rebuild an FQ12 element from Montgomery-domain coefficients."""
    return FQ12([MONT.from_mont(c) for c in coeffs])


def fq12_mont_mul(a: Sequence[int], b: Sequence[int]) -> Tuple[int, ...]:
    """Schoolbook FQ12 product with per-multiply Montgomery reduction."""
    prod = [0] * (2 * _DEGREE - 1)
    for i in range(_DEGREE):
        ai = a[i]
        if ai == 0:
            continue
        for j in range(_DEGREE):
            bj = b[j]
            if bj:
                prod[i + j] = (prod[i + j] + MONT.mul(ai, bj)) % _Q
    for i in range(2 * _DEGREE - 2, _DEGREE - 1, -1):
        top = prod[i]
        if top:
            prod[i] = 0
            prod[i - 6] = (prod[i - 6] + 18 * top) % _Q
            prod[i - 12] = (prod[i - 12] - 82 * top) % _Q
    return tuple(prod[:_DEGREE])


#: power → tuple of 12 coefficient-tuples: the images (w^(q^power))^i.
_FROBENIUS_TABLES: dict = {}


def _frobenius_table(power: int):
    table = _FROBENIUS_TABLES.get(power)
    if table is None:
        w = FQ12((0, 1) + (0,) * 10)
        wq = w ** pow(_Q, power)
        img = FQ12.one()
        rows = []
        for _ in range(_DEGREE):
            rows.append(img.coeffs)
            img = img * wq
        table = tuple(rows)
        _FROBENIUS_TABLES[power] = table
    return table


def _poly_degree(coeffs: Sequence[int]) -> int:
    for i in range(len(coeffs) - 1, -1, -1):
        if coeffs[i] % _Q:
            return i
    return 0


def _poly_rounded_div(a: Sequence[int], b: Sequence[int]) -> List[int]:
    dega = _poly_degree(a)
    degb = _poly_degree(b)
    temp = [c % _Q for c in a]
    out = [0] * len(a)
    inv_lead = pow(b[degb], -1, _Q)
    for i in range(dega - degb, -1, -1):
        factor = (temp[degb + i] * inv_lead) % _Q
        out[i] = factor
        for j in range(degb + 1):
            temp[i + j] = (temp[i + j] - factor * b[j]) % _Q
    return out[: _poly_degree(out) + 1]


def _poly_inverse(coeffs: Sequence[int]) -> "FQ12":
    """Inverse in FQ[w]/(modulus) via the extended Euclid algorithm."""
    lm: List[int] = [1] + [0] * _DEGREE
    hm: List[int] = [0] * (_DEGREE + 1)
    low: List[int] = [c % _Q for c in coeffs] + [0]
    high: List[int] = [c % _Q for c in MODULUS_COEFFS] + [1]
    while _poly_degree(low):
        r = _poly_rounded_div(high, low)
        r += [0] * (_DEGREE + 1 - len(r))
        nm = list(hm)
        new = list(high)
        for i in range(_DEGREE + 1):
            for j in range(_DEGREE + 1 - i):
                nm[i + j] = (nm[i + j] - lm[i] * r[j]) % _Q
                new[i + j] = (new[i + j] - low[i] * r[j]) % _Q
        high, low, hm, lm = low, new, lm, nm
    inv_const = pow(low[0], -1, _Q)
    return FQ12([(c * inv_const) % _Q for c in lm[:_DEGREE]])
