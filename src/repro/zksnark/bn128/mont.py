"""Montgomery-form modular arithmetic (generic over an odd modulus).

Residues are stored as ``aR mod q`` with ``R = 2^bits``; multiplication
is a REDC (Montgomery reduction) instead of a division.  On CPython's
big ints a REDC (three multiplies plus shifts/masks) runs slightly
faster than one ``(a*b) % q`` for 254-bit operands, and — more
importantly — the *lazy* variant skips the final conditional
subtraction so chained formulas (Jacobian point addition) keep values
in ``[0, 2q)`` and pay one canonicalization at the end.

Every fast path built on this module stays pinned to the plain
``% q`` oracle through the differential sweep
(``tests/zksnark/test_differential.py``) with the Montgomery axis
toggled on and off.
"""

from __future__ import annotations


class MontContext:
    """Precomputed Montgomery constants for one odd modulus."""

    __slots__ = ("modulus", "bits", "mask", "r1", "r2", "neg_qinv")

    def __init__(self, modulus: int, bits: int | None = None) -> None:
        if modulus < 3 or modulus % 2 == 0:
            raise ValueError("Montgomery arithmetic needs an odd modulus >= 3")
        if bits is None:
            # Round up to a whole limb-ish power of two above the modulus.
            bits = ((modulus.bit_length() + 63) // 64) * 64
        if (1 << bits) <= modulus:
            raise ValueError("R = 2^bits must exceed the modulus")
        self.modulus = modulus
        self.bits = bits
        r = 1 << bits
        self.mask = r - 1
        self.r1 = r % modulus  # the residue of 1
        self.r2 = r * r % modulus  # to_mont multiplier
        self.neg_qinv = (-pow(modulus, -1, r)) % r  # -q^-1 mod R

    # -- core reduction ------------------------------------------------------

    def redc(self, t: int) -> int:
        """Montgomery reduction: ``t * R^-1 mod q`` for t < qR."""
        q = self.modulus
        u = (t + ((t & self.mask) * self.neg_qinv & self.mask) * q) >> self.bits
        return u - q if u >= q else u

    def mul(self, a: int, b: int) -> int:
        """Product of two Montgomery residues, canonical in [0, q)."""
        q = self.modulus
        t = a * b
        u = (t + ((t & self.mask) * self.neg_qinv & self.mask) * q) >> self.bits
        return u - q if u >= q else u

    def mul_lazy(self, a: int, b: int) -> int:
        """Product without the final subtraction; result in [0, 2q).

        Safe to chain: for a, b < 2q the intermediate t = a·b < 4q² < qR
        (since 4q < R for a 254-bit q with R = 2^256), so the REDC
        quotient stays below 2q.
        """
        t = a * b
        return (
            t + ((t & self.mask) * self.neg_qinv & self.mask) * self.modulus
        ) >> self.bits

    # -- domain conversion ---------------------------------------------------

    def to_mont(self, a: int) -> int:
        """Map a plain residue into the Montgomery domain (a·R mod q)."""
        return self.mul(a % self.modulus, self.r2)

    def from_mont(self, a: int) -> int:
        """Map a Montgomery residue back to a plain one (a·R⁻¹ mod q)."""
        return self.redc(a)

    def canon(self, a: int) -> int:
        """Canonicalize a lazy value from [0, 2q) into [0, q)."""
        return a - self.modulus if a >= self.modulus else a

    # -- derived helpers -----------------------------------------------------

    def inv(self, a: int) -> int:
        """Inverse of a Montgomery residue, in the Montgomery domain."""
        plain = self.from_mont(a)
        if plain == 0:
            raise ZeroDivisionError("inverse of zero in Montgomery domain")
        return self.to_mont(pow(plain, -1, self.modulus))

    def pow(self, a: int, e: int) -> int:
        """a^e for a Montgomery residue a, staying in the domain."""
        if e < 0:
            return self.pow(self.inv(a), -e)
        result = self.r1
        base = a
        while e:
            if e & 1:
                result = self.mul(result, base)
            base = self.mul(base, base)
            e >>= 1
        return result
