"""Backend abstraction for proving systems.

A :class:`CircuitDefinition` knows how to synthesize its constraints
into a :class:`~repro.zksnark.circuit.ConstraintSystem` for a concrete
instance (public + private values together).  A
:class:`ProvingBackend` turns circuit definitions into key material,
proofs, and verification decisions.

Two backends ship with the library:

- :class:`repro.zksnark.groth16.Groth16Backend` — the real pairing-based
  SNARK (succinct proofs, slow in pure Python);
- :class:`repro.zksnark.mock.MockBackend` — the ideal SNARK
  functionality (fast; used for protocol-scale simulations and tests).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro import observability as obs
from repro.errors import ProofError
from repro.zksnark.circuit import ConstraintSystem
from repro.zksnark.field import FR, PrimeField


def fanout_map(worker, items: list, jobs: int, chunked: bool):
    """Map ``worker`` over ``items``, forking when ``jobs > 1``.

    ``chunked=True`` splits one long scalar list into per-process
    slices; ``chunked=False`` maps the worker over heterogeneous tasks.
    Results always come back in item order (``pool.map`` semantics), so
    callers that need determinism can rely on it.  Falls back to serial
    execution wherever fork is unavailable.
    """
    if jobs > 1 and len(items) > 1:
        import multiprocessing as mp

        try:
            ctx = mp.get_context("fork")
        except ValueError:
            ctx = None
        if ctx is not None:
            if chunked:
                size = (len(items) + jobs - 1) // jobs
                chunks = [items[i : i + size] for i in range(0, len(items), size)]
                with ctx.Pool(min(jobs, len(chunks))) as pool:
                    parts = pool.map(worker, chunks)
                return [point for part in parts for point in part]
            with ctx.Pool(min(jobs, len(items))) as pool:
                return pool.map(worker, items)
    if chunked:
        return worker(items)
    return [worker(item) for item in items]


class BatchProveJob:
    """Picklable worker mapping one (pk, circuit, instance) to a proof."""

    def __init__(self, backend: "ProvingBackend") -> None:
        self.backend = backend

    def __call__(self, request) -> "Proof":
        proving_key, circuit, instance = request
        return self.backend.prove(proving_key, circuit, instance)


class CircuitDefinition(abc.ABC):
    """A reusable circuit template.

    Subclasses must synthesize an *instance-independent structure*: the
    set of constraints may depend only on the circuit's parameters
    (e.g. number of workers), never on wire values, so that keys
    generated from :meth:`example_instance` fit every real instance.
    """

    #: Human-readable circuit name (appears in key digests and errors).
    name: str = "circuit"

    field: PrimeField = FR

    #: True for circuits whose statement includes native predicates that
    #: have no R1CS encoding (e.g. EM-based reward policies); only the
    #: ideal-functionality MockBackend accepts them.
    requires_ideal_backend: bool = False

    @abc.abstractmethod
    def example_instance(self) -> Any:
        """A syntactically valid instance used to derive the structure."""

    @abc.abstractmethod
    def synthesize(self, cs: ConstraintSystem, instance: Any) -> None:
        """Allocate wires (publics first) and enforce all constraints."""

    def build(self, instance: Any) -> ConstraintSystem:
        """Synthesize a fresh constraint system for ``instance``."""
        cs = ConstraintSystem(self.field)
        self.synthesize(cs, instance)
        return cs

    def public_inputs(self, instance: Any) -> List[int]:
        """The statement vector for ``instance`` (via full synthesis).

        Backends use this when a verifier-side caller hands them an
        instance rather than a raw statement vector; concrete circuits
        may override it with a cheaper direct computation.
        """
        return self.build(instance).public_values()

    def extra_digest(self) -> bytes:
        """Extra semantics folded into the circuit digest.

        Circuits with native predicates (``requires_ideal_backend``)
        must return a digest binding those semantics, so a proof for
        one policy never verifies for another with the same R1CS shell.
        """
        return b""

    def native_checks(self, instance: Any) -> None:
        """Raise if ``instance`` violates predicates outside the R1CS.

        Only consulted by the ideal-functionality backend.
        """


def full_circuit_digest(circuit: CircuitDefinition, r1cs=None) -> bytes:
    """The digest key material binds to: R1CS structure + extra semantics.

    The structure digest is cached on the circuit object: synthesis is
    instance-independent by the :class:`CircuitDefinition` contract, so
    every prove against the same circuit hashes the same structure —
    recomputing it per proof dominated batched proving runs.  With
    ``r1cs=None`` the circuit is synthesized from its example instance
    on a cache miss (used by the proving service's warm-key lookup).
    """
    from repro.crypto.hashing import sha256

    structure = circuit.__dict__.get("_structure_digest_cache")
    if structure is None:
        if r1cs is None:
            r1cs = circuit.build(circuit.example_instance()).to_r1cs()
        structure = r1cs.structure_digest()
        circuit.__dict__["_structure_digest_cache"] = structure
    return sha256(b"circuit-digest", structure, circuit.extra_digest())


@dataclass
class Proof:
    """A proof with its backend tag and serialized payload."""

    backend: str
    payload: bytes

    def size_bytes(self) -> int:
        return len(self.payload)


@dataclass
class VerifyingKey:
    """Opaque verification material plus the circuit digest it binds to."""

    backend: str
    circuit_digest: bytes
    num_public: int
    payload: Any

    def size_bytes(self) -> int:
        raise NotImplementedError


@dataclass
class KeyPair:
    """Setup output: proving key and verification key."""

    proving_key: Any
    verifying_key: Any


class ProvingBackend(abc.ABC):
    """Interface every proof system implements."""

    name: str = "backend"

    @abc.abstractmethod
    def setup(self, circuit: CircuitDefinition, seed: Optional[bytes] = None) -> KeyPair:
        """Run the (trusted) setup for ``circuit``."""

    @abc.abstractmethod
    def prove(self, proving_key: Any, circuit: CircuitDefinition, instance: Any) -> Proof:
        """Produce a proof that ``instance`` satisfies ``circuit``."""

    @abc.abstractmethod
    def verify(self, verifying_key: Any, public_inputs: List[int], proof: Proof) -> bool:
        """Check a proof against the statement vector."""

    def prove_many(
        self, requests: Sequence[tuple]
    ) -> List[Proof]:
        """Prove a batch of ``(proving_key, circuit, instance)`` jobs.

        Returns proofs in request order.  The default loops over
        :meth:`prove`; backends with a process pool (Groth16's fork
        fan-out) override this so a shared proving pool can run many
        tasks' reward proofs concurrently.
        """
        with obs.span("snark.prove_many", backend=self.name, jobs=len(requests)):
            proofs = [
                self.prove(proving_key, circuit, instance)
                for proving_key, circuit, instance in requests
            ]
        if obs.TRACER.enabled:
            obs.count("snark.prove_many.calls")
            obs.count("snark.prove_many.jobs", len(requests))
        return proofs

    def batch_verify(
        self,
        verifying_key: Any,
        statements: Sequence[List[int]],
        proofs: Sequence[Proof],
    ) -> bool:
        """Check n (statement, proof) pairs under one verifying key.

        The default just loops over :meth:`verify`; backends with an
        amortizable verifier (Groth16's random-linear-combination
        multi-pairing) override this with a genuinely cheaper check.
        An empty batch is vacuously valid.
        """
        if len(statements) != len(proofs):
            raise ProofError(
                f"batch length mismatch: {len(statements)} statements "
                f"vs {len(proofs)} proofs"
            )
        with obs.span(
            "snark.batch_verify", backend=self.name, proofs=len(proofs)
        ) as batch_span:
            result = all(
                self.verify(verifying_key, list(statement), proof)
                for statement, proof in zip(statements, proofs)
            )
            batch_span.set_attrs(valid=result)
        if obs.TRACER.enabled:
            obs.count("snark.batch_verify.calls")
            obs.count("snark.batch_verify.proofs", len(proofs))
        return result

    def _check_backend(self, proof: Proof) -> None:
        if proof.backend != self.name:
            raise ProofError(
                f"proof was produced by backend {proof.backend!r}, "
                f"not {self.name!r}"
            )


_REGISTRY: Dict[str, "ProvingBackend"] = {}


def register_backend(backend: ProvingBackend) -> None:
    """Register a backend instance under its name."""
    _REGISTRY[backend.name] = backend


def get_backend(name: str) -> ProvingBackend:
    """Fetch a registered backend (``groth16`` or ``mock``)."""
    # Import lazily so registration happens on first use.
    if not _REGISTRY:
        from repro.zksnark.groth16 import Groth16Backend
        from repro.zksnark.mock import MockBackend
        from repro.zksnark.service import ProvingService

        register_backend(Groth16Backend())
        register_backend(MockBackend())
        register_backend(ProvingService())
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown proving backend {name!r}; expected one of {sorted(_REGISTRY)}"
        ) from None
