"""From-scratch zk-SNARK stack.

The paper uses libsnark (BCTV14) embedded in a modified EVM.  This
package reproduces the same architecture with a Groth16-style
preprocessing SNARK implemented from first principles:

- :mod:`repro.zksnark.field` — prime-field arithmetic (BN128 scalar field).
- :mod:`repro.zksnark.r1cs` / :mod:`repro.zksnark.circuit` — rank-1
  constraint systems and a gadget-friendly builder DSL.
- :mod:`repro.zksnark.qap` — R1CS → quadratic arithmetic program.
- :mod:`repro.zksnark.bn128` — the BN128 pairing group (FQ/FQ2/FQ12
  tower, optimal-ate pairing) used by Ethereum's SNARK precompiles.
- :mod:`repro.zksnark.groth16` — trusted setup, prover, verifier.
- :mod:`repro.zksnark.mock` — a fast backend implementing the *ideal*
  SNARK functionality, for protocol-level tests and large simulations.
"""

from repro.zksnark.backend import CircuitDefinition, KeyPair, Proof, ProvingBackend, get_backend
from repro.zksnark.circuit import ConstraintSystem, LinearCombination, Variable
from repro.zksnark.field import FR, FieldElement, PrimeField
from repro.zksnark.groth16 import Groth16Backend
from repro.zksnark.mock import MockBackend
from repro.zksnark.service import ProvingService

__all__ = [
    "CircuitDefinition",
    "KeyPair",
    "Proof",
    "ProvingBackend",
    "get_backend",
    "ConstraintSystem",
    "LinearCombination",
    "Variable",
    "FR",
    "FieldElement",
    "PrimeField",
    "Groth16Backend",
    "MockBackend",
    "ProvingService",
]
