"""Structured observability: spans, metrics, exporters.

One global switch governs the whole layer, and **off is the default**:
every instrumented hot path (block import, VM execution, gas metering,
SNARK setup/prove/verify, pairing/MSM internals) first reads
``TRACER.enabled`` and bails, so the disabled system performs like an
uninstrumented one (guarded to < 5% by the overhead test).

Typical use::

    from repro import observability as obs

    obs.enable()
    with obs.span("chain.verify_proof", inputs=3):
        ...
    obs.count("snark.pairing.calls")
    obs.export_spans("trace.jsonl")
    print(obs.METRICS.render_prometheus())

Deterministic traces: hand the chain simulation's clock to the tracer
(``obs.TRACER.set_clock(testnet.clock)``) and every timestamp becomes
simulated seconds — identical across runs, which is how the timeline
tests assert exact phase ordering.

Span/metric name inventory (kept in sync with DESIGN.md §8):

==============================  ====================================================
``protocol.register``           RA registration + on-chain commitment update
``protocol.authenticate``       one anonymous attestation (SNARK prove inside)
``protocol.submit``             worker answer submission (encrypt + auth + tx)
``protocol.audit``              batched re-verification of a task's submissions
``protocol.reward``             decrypt + policy + prove + instruct
``chain.import_block``          block validation and re-execution on one node
``chain.create_block``          mining: selection + execution + seal
``chain.verify_proof``          the snark_verify precompile
``chain.batch_verify_proof``    the snark_batch_verify precompile
``vm.execute_tx``               one transaction end to end
``txsender.send``               reliable client submission incl. retries
``snark.setup|prove|verify|batch_verify``  backend operations (both backends)
==============================  ====================================================
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.observability.export import (
    read_spans_jsonl,
    spans_to_jsonl,
    write_prometheus,
    write_spans_jsonl,
)
from repro.observability.metrics import (
    DEFAULT_DEPTH_BUCKETS,
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.observability.tracer import NULL_SPAN, NullSpan, Span, Tracer

#: The process-global tracer and registry every instrumented module uses.
TRACER = Tracer()
METRICS = MetricsRegistry()

__all__ = [
    "TRACER", "METRICS",
    "Tracer", "Span", "NullSpan",
    "MetricsRegistry", "Counter", "Gauge", "Histogram",
    "DEFAULT_LATENCY_BUCKETS", "DEFAULT_DEPTH_BUCKETS",
    "enable", "disable", "enabled", "reset",
    "span", "count", "observe", "gauge_set",
    "export_spans", "read_spans_jsonl", "spans_to_jsonl",
    "write_spans_jsonl", "write_prometheus",
]


def enable() -> None:
    """Switch the observability layer on (spans + metrics record)."""
    TRACER.enable()


def disable() -> None:
    """Back to the no-op default."""
    TRACER.disable()


def enabled() -> bool:
    return TRACER.enabled


def reset() -> None:
    """Clear recorded spans and forget every metric instrument."""
    TRACER.reset()
    METRICS.reset()


# ----- hot-path helpers (each starts with the enabled check) ------------------------


def span(name: str, **attrs: Any):
    """Open a span under the global tracer (no-op while disabled)."""
    if not TRACER.enabled:
        return TRACER.span(name)  # returns the shared NullSpan
    return TRACER.span(name, **attrs)


def count(name: str, amount: int = 1) -> None:
    """Bump a counter (no-op while disabled)."""
    if TRACER.enabled:
        METRICS.counter(name).inc(amount)


def observe(
    name: str, value: float, buckets: Optional[Sequence[float]] = None
) -> None:
    """Record one histogram observation (no-op while disabled).

    ``buckets`` only matters on the histogram's first registration.
    """
    if TRACER.enabled:
        METRICS.histogram(name, buckets).observe(value)


def gauge_set(name: str, value: float) -> None:
    """Set a gauge (no-op while disabled)."""
    if TRACER.enabled:
        METRICS.gauge(name).set(value)


def export_spans(destination) -> int:
    """Write every finished span as JSON-lines; returns the span count."""
    return write_spans_jsonl(TRACER.finished_spans(), destination)
