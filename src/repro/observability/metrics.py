"""A metrics registry: counters, gauges, and fixed-bucket histograms.

Metric naming follows the Prometheus convention (dot-separated here,
rendered with underscores by the exporter): ``chain.reorg_depth``,
``snark.verify_seconds``, ``vm.gas.storage``.  All three instrument
types are lock-protected; the hot paths only reach them behind the
observability enabled flag, so a disabled system pays one attribute
read per call site.

Histograms are fixed-bucket (cumulative, Prometheus-style): a bucket
list ``(0.01, 0.1, 1)`` yields counts for ``le=0.01``, ``le=0.1``,
``le=1`` and ``le=+Inf``, plus a running sum and count.  Buckets are
set at first registration; later registrations reuse the existing
instrument (so call sites don't need to coordinate).
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple

#: Default latency buckets in seconds (sub-ms to tens of seconds).
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

#: Default size/depth buckets (mempool depth, batch sizes, reorg depth).
DEFAULT_DEPTH_BUCKETS: Tuple[float, ...] = (
    1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233,
)


class Counter:
    """A monotonically increasing count."""

    def __init__(self, name: str, help_text: str = "") -> None:
        self.name = name
        self.help_text = help_text
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self.value += amount


class Gauge:
    """A value that can go up and down (mempool depth, chain height)."""

    def __init__(self, name: str, help_text: str = "") -> None:
        self.name = name
        self.help_text = help_text
        self.value: float = 0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value

    def add(self, delta: float) -> None:
        with self._lock:
            self.value += delta


class Histogram:
    """Cumulative fixed-bucket histogram (Prometheus semantics)."""

    def __init__(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        help_text: str = "",
    ) -> None:
        if not buckets:
            raise ValueError("histograms need at least one bucket boundary")
        ordered = sorted(float(b) for b in buckets)
        if len(set(ordered)) != len(ordered):
            raise ValueError("histogram bucket boundaries must be distinct")
        self.name = name
        self.help_text = help_text
        self.buckets: Tuple[float, ...] = tuple(ordered)
        # counts[i] is the number of observations <= buckets[i];
        # counts[-1] (the +Inf bucket) equals count.
        self.counts: List[int] = [0] * (len(ordered) + 1)
        self.sum: float = 0.0
        self.count: int = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        index = bisect_left(self.buckets, value)
        with self._lock:
            for i in range(index, len(self.counts)):
                self.counts[i] += 1
            self.sum += value
            self.count += 1

    def bucket_counts(self) -> Dict[str, int]:
        """Cumulative counts keyed by upper bound (``+Inf`` last)."""
        labels = [repr(b) for b in self.buckets] + ["+Inf"]
        return dict(zip(labels, self.counts))

    def quantile(self, q: float) -> float:
        """The upper bound of the bucket holding the q-quantile.

        Bucketed quantiles are upper bounds, not interpolations — good
        enough for dashboards, documented so nobody mistakes them for
        exact order statistics.
        """
        if not 0 <= q <= 1:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        for boundary, cumulative in zip(self.buckets, self.counts):
            if cumulative >= rank:
                return boundary
        return float("inf")


class MetricsRegistry:
    """Name → instrument map with get-or-create accessors."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str, help_text: str = "") -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter(name, help_text)
            return instrument

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge(name, help_text)
            return instrument

    def histogram(
        self,
        name: str,
        buckets: Optional[Sequence[float]] = None,
        help_text: str = "",
    ) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram(
                    name, buckets or DEFAULT_LATENCY_BUCKETS, help_text
                )
            return instrument

    def reset(self) -> None:
        """Forget every instrument (tests isolate through this)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    # ----- read-side ----------------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict]:
        """A plain-dict dump of every instrument (JSON-friendly)."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {n: c.value for n, c in sorted(counters.items())},
            "gauges": {n: g.value for n, g in sorted(gauges.items())},
            "histograms": {
                n: {
                    "buckets": h.bucket_counts(),
                    "sum": h.sum,
                    "count": h.count,
                }
                for n, h in sorted(histograms.items())
            },
        }

    def render_prometheus(self) -> str:
        """The text exposition format (``# TYPE`` lines + samples)."""
        lines: List[str] = []
        with self._lock:
            counters = sorted(self._counters.items())
            gauges = sorted(self._gauges.items())
            histograms = sorted(self._histograms.items())
        for name, counter in counters:
            flat = _flatten(name)
            if counter.help_text:
                lines.append(f"# HELP {flat} {counter.help_text}")
            lines.append(f"# TYPE {flat} counter")
            lines.append(f"{flat} {counter.value}")
        for name, gauge in gauges:
            flat = _flatten(name)
            if gauge.help_text:
                lines.append(f"# HELP {flat} {gauge.help_text}")
            lines.append(f"# TYPE {flat} gauge")
            lines.append(f"{flat} {_format_value(gauge.value)}")
        for name, histogram in histograms:
            flat = _flatten(name)
            if histogram.help_text:
                lines.append(f"# HELP {flat} {histogram.help_text}")
            lines.append(f"# TYPE {flat} histogram")
            for boundary, cumulative in zip(histogram.buckets, histogram.counts):
                lines.append(
                    f'{flat}_bucket{{le="{_format_value(boundary)}"}} {cumulative}'
                )
            lines.append(f'{flat}_bucket{{le="+Inf"}} {histogram.counts[-1]}')
            lines.append(f"{flat}_sum {_format_value(histogram.sum)}")
            lines.append(f"{flat}_count {histogram.count}")
        return "\n".join(lines) + "\n"


def _flatten(name: str) -> str:
    """``chain.reorg_depth`` → ``chain_reorg_depth`` (Prometheus-legal)."""
    return name.replace(".", "_").replace("-", "_")


def _format_value(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)
