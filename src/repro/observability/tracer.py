"""A zero-dependency span tracer.

``tracer.span("chain.verify_proof", inputs=3)`` is a context manager
producing one :class:`Span` per ``with`` block.  Spans nest: the active
span is tracked in a :mod:`contextvars` variable, so each thread (and
each asyncio task) maintains its own ancestry and a child records its
parent's id without any explicit plumbing.  Finished spans are appended
to the tracer's buffer under a lock.

Disabled is the default and costs (almost) nothing: ``span()`` returns
a shared singleton whose ``__enter__``/``__exit__`` are empty — no
allocation, no clock read, no lock.  The overhead guard in
``tests/observability/test_overhead.py`` holds this path to < 5% of an
auth-circuit verification.

Clock injection: the tracer reads timestamps from a swappable clock so
traces taken under the discrete-event chain simulation are bit-for-bit
reproducible.  :meth:`Tracer.set_clock` accepts a plain callable
returning seconds or a :class:`repro.chain.clock.SimClock`-shaped
object (anything with a numeric ``now`` attribute).

Process safety: spans record their ``pid``; a forked worker (the SNARK
``jobs`` fan-out) inherits a consistent snapshot of the buffer and its
appends stay in the child, so the parent's trace is never corrupted —
cross-process aggregation is the exporter's job, not the tracer's.
"""

from __future__ import annotations

import contextvars
import itertools
import os
import threading
import time
from typing import Any, Callable, Dict, List, Optional


class NullSpan:
    """The shared no-op span handed out while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set_attrs(self, **attrs: Any) -> None:
        pass


NULL_SPAN = NullSpan()


class Span:
    """One timed, attributed, parent-linked unit of work."""

    __slots__ = (
        "name", "span_id", "parent_id", "start", "end", "attrs", "status",
        "pid", "_tracer", "_token",
    )

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = next(tracer._ids)
        self.parent_id: Optional[int] = None
        self.start: float = 0.0
        self.end: float = 0.0
        self.status = "ok"
        self.pid = os.getpid()
        self._token: Optional[contextvars.Token] = None

    def __enter__(self) -> "Span":
        parent = self._tracer._active.get()
        if parent is not None:
            self.parent_id = parent.span_id
        self._token = self._tracer._active.set(self)
        self.start = self._tracer._read_clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.end = self._tracer._read_clock()
        if exc_type is not None:
            self.status = f"error:{exc_type.__name__}"
        if self._token is not None:
            self._tracer._active.reset(self._token)
            self._token = None
        self._tracer._record(self)
        return False

    def set_attrs(self, **attrs: Any) -> None:
        """Attach (or overwrite) attributes on the open span."""
        self.attrs.update(attrs)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serializable record (the JSON-lines wire format)."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end,
            "status": self.status,
            "pid": self.pid,
            "attrs": self.attrs,
        }


class Tracer:
    """Collects spans; disabled (and near-free) unless switched on."""

    def __init__(self, clock: Optional[Any] = None) -> None:
        self.enabled = False
        self._lock = threading.Lock()
        self._spans: List[Span] = []
        self._active: contextvars.ContextVar[Optional[Span]] = contextvars.ContextVar(
            "repro-active-span", default=None
        )
        self._ids = itertools.count(1)
        self._read_clock: Callable[[], float] = time.perf_counter
        if clock is not None:
            self.set_clock(clock)

    # ----- control -----------------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def set_clock(self, clock: Any) -> None:
        """Swap the time source.

        ``clock`` may be ``None`` (restore the wall clock), a callable
        returning seconds, or an object with a numeric ``now`` attribute
        (:class:`repro.chain.clock.SimClock`), which makes traces
        deterministic under the simulated chain.
        """
        if clock is None:
            self._read_clock = time.perf_counter
        elif callable(clock):
            self._read_clock = clock
        elif hasattr(clock, "now"):
            self._read_clock = lambda: float(clock.now)
        else:
            raise TypeError(
                "clock must be None, a zero-argument callable, or expose .now"
            )

    def reset(self) -> None:
        """Drop every finished span (counters keep advancing)."""
        with self._lock:
            self._spans.clear()

    # ----- spans --------------------------------------------------------------------

    def span(self, name: str, **attrs: Any):
        """Open a span; a shared no-op when tracing is disabled."""
        if not self.enabled:
            return NULL_SPAN
        return Span(self, name, attrs)

    def current_span(self) -> Optional[Span]:
        return self._active.get()

    def _record(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)

    def finished_spans(self) -> List[Span]:
        """Finished spans in completion order (a snapshot copy)."""
        with self._lock:
            return list(self._spans)

    def spans_named(self, name: str) -> List[Span]:
        return [span for span in self.finished_spans() if span.name == name]
