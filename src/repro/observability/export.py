"""Exporters: JSON-lines span logs and the Prometheus text dump.

The JSON-lines format is one span per line (the dict shape of
:meth:`repro.observability.tracer.Span.to_dict`), append-friendly and
parseable back into the same dicts — the round-trip is asserted in
``tests/observability/test_tracer.py`` and the CI e2e run uploads one
of these files as a build artifact.
"""

from __future__ import annotations

import io
import json
from typing import IO, Any, Dict, Iterable, List, Union

from repro.observability.metrics import MetricsRegistry
from repro.observability.tracer import Span

PathOrFile = Union[str, IO[str]]


def spans_to_jsonl(spans: Iterable[Union[Span, Dict[str, Any]]]) -> str:
    """Serialize finished spans (or span dicts) to a JSON-lines string."""
    return "".join(
        json.dumps(
            span.to_dict() if isinstance(span, Span) else span,
            sort_keys=True,
            separators=(",", ":"),
        )
        + "\n"
        for span in spans
    )


def write_spans_jsonl(
    spans: Iterable[Union[Span, Dict[str, Any]]], destination: PathOrFile
) -> int:
    """Write spans as JSON-lines; returns the number of spans written."""
    text = spans_to_jsonl(spans)
    if isinstance(destination, str):
        with open(destination, "w", encoding="utf-8") as handle:
            handle.write(text)
    else:
        destination.write(text)
    return text.count("\n")


def read_spans_jsonl(source: PathOrFile) -> List[Dict[str, Any]]:
    """Parse a JSON-lines span log back into span dicts."""
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            return _parse_lines(handle)
    return _parse_lines(source)


def _parse_lines(handle: IO[str]) -> List[Dict[str, Any]]:
    records: List[Dict[str, Any]] = []
    for line_number, line in enumerate(handle, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"bad span record on line {line_number}: {exc}") from exc
        if not isinstance(record, dict) or "name" not in record:
            raise ValueError(f"span record on line {line_number} is not a span dict")
        records.append(record)
    return records


def write_prometheus(registry: MetricsRegistry, destination: PathOrFile) -> str:
    """Dump the registry in the Prometheus text format; returns the text."""
    text = registry.render_prometheus()
    if isinstance(destination, str):
        with open(destination, "w", encoding="utf-8") as handle:
            handle.write(text)
    else:
        destination.write(text)
    return text


def render_to_string(registry: MetricsRegistry) -> str:
    """Convenience: the Prometheus dump as a string."""
    buffer = io.StringIO()
    write_prometheus(registry, buffer)
    return buffer.getvalue()
