"""Canonical byte encodings shared across the library.

Everything written to the simulated blockchain, hashed, or signed goes
through these helpers so that two nodes always agree byte-for-byte on
what a message looks like.  The format is a tiny, deterministic
length-prefixed encoding (a simplified RLP): values are encoded as
``tag || length || payload`` and lists concatenate their encoded items.
"""

from __future__ import annotations

from typing import Iterable, Sequence

_TAG_BYTES = 0x01
_TAG_INT = 0x02
_TAG_STR = 0x03
_TAG_LIST = 0x04
_TAG_NONE = 0x05
_TAG_NEGINT = 0x06
_TAG_DICT = 0x07
_TAG_OBJECT = 0x08

Encodable = "None | int | str | bytes | Sequence[Encodable]"


def _encode_length(n: int) -> bytes:
    return n.to_bytes(4, "big")


def int_to_bytes(value: int, length: int | None = None) -> bytes:
    """Encode a non-negative integer big-endian, minimally or fixed-width."""
    if value < 0:
        raise ValueError("only non-negative integers are encodable")
    if length is None:
        length = max(1, (value.bit_length() + 7) // 8)
    return value.to_bytes(length, "big")


def bytes_to_int(data: bytes) -> int:
    """Decode a big-endian unsigned integer."""
    return int.from_bytes(data, "big")


def encode(value) -> bytes:
    """Deterministically encode ``value`` (ints, bytes, str, None, lists)."""
    if value is None:
        return bytes([_TAG_NONE]) + _encode_length(0)
    if isinstance(value, bool):
        # bool is an int subclass; normalize so True encodes like 1.
        value = int(value)
    if isinstance(value, int):
        if value < 0:
            payload = int_to_bytes(-value)
            return bytes([_TAG_NEGINT]) + _encode_length(len(payload)) + payload
        payload = int_to_bytes(value)
        return bytes([_TAG_INT]) + _encode_length(len(payload)) + payload
    if isinstance(value, (bytes, bytearray, memoryview)):
        payload = bytes(value)
        return bytes([_TAG_BYTES]) + _encode_length(len(payload)) + payload
    if isinstance(value, str):
        payload = value.encode("utf-8")
        return bytes([_TAG_STR]) + _encode_length(len(payload)) + payload
    if isinstance(value, (list, tuple)):
        body = b"".join(encode(item) for item in value)
        return bytes([_TAG_LIST]) + _encode_length(len(body)) + body
    if isinstance(value, dict):
        body = b"".join(
            encode(key) + encode(item) for key, item in value.items()
        )
        return bytes([_TAG_DICT]) + _encode_length(len(body)) + body
    # Opaque objects (e.g. SNARK verification keys in contract calldata)
    # fall back to pickle.  The encoder output is produced once and then
    # signed/hashed as bytes, so round-trip fidelity — not re-encoding
    # canonicity — is what matters here.
    import pickle

    payload = pickle.dumps(value, protocol=5)
    return bytes([_TAG_OBJECT]) + _encode_length(len(payload)) + payload


def decode(data: bytes):
    """Inverse of :func:`encode`; raises ``ValueError`` on trailing bytes."""
    value, rest = _decode_one(memoryview(data))
    if len(rest) != 0:
        raise ValueError("trailing bytes after canonical value")
    return value


def _decode_one(view: memoryview):
    if len(view) < 5:
        raise ValueError("truncated canonical encoding")
    tag = view[0]
    length = int.from_bytes(view[1:5], "big")
    payload = view[5 : 5 + length]
    if len(payload) != length:
        raise ValueError("truncated canonical payload")
    rest = view[5 + length :]
    if tag == _TAG_NONE:
        return None, rest
    if tag == _TAG_INT:
        return int.from_bytes(payload, "big"), rest
    if tag == _TAG_NEGINT:
        return -int.from_bytes(payload, "big"), rest
    if tag == _TAG_BYTES:
        return bytes(payload), rest
    if tag == _TAG_STR:
        return bytes(payload).decode("utf-8"), rest
    if tag == _TAG_LIST:
        items = []
        inner = payload
        while len(inner):
            item, inner = _decode_one(inner)
            items.append(item)
        return items, rest
    if tag == _TAG_DICT:
        result = {}
        inner = payload
        while len(inner):
            key, inner = _decode_one(inner)
            item, inner = _decode_one(inner)
            result[key] = item
        return result, rest
    if tag == _TAG_OBJECT:
        import pickle

        return pickle.loads(bytes(payload)), rest
    raise ValueError(f"unknown canonical tag {tag:#x}")


def framed_encode(magic: bytes, version: int, value) -> bytes:
    """Encode ``value`` under a ``magic|version|payload|sha256`` frame.

    The strict framing the checkpoint (ZLCP) and marketplace wire
    formats share: the checksum covers magic, version and payload, so
    any bit flip, truncation or insertion is rejected at the frame
    layer before the payload is even decoded.
    """
    import hashlib

    body = magic + bytes([version]) + encode(value)
    return body + hashlib.sha256(body).digest()


def framed_decode(magic: bytes, version: int, data: bytes):
    """Inverse of :func:`framed_encode`; raises ``ValueError`` on any
    magic/version/checksum mismatch or malformed payload."""
    import hashlib

    overhead = len(magic) + 1 + 32
    if len(data) < overhead:
        raise ValueError("truncated frame")
    if data[: len(magic)] != magic:
        raise ValueError("bad frame magic")
    if data[len(magic)] != version:
        raise ValueError(f"unsupported frame version {data[len(magic)]}")
    body, checksum = data[:-32], data[-32:]
    if hashlib.sha256(body).digest() != checksum:
        raise ValueError("frame checksum mismatch")
    return decode(body[len(magic) + 1 :])


def hex_str(data: bytes, prefix: bool = True) -> str:
    """Render bytes as a 0x-prefixed hex string (Ethereum style)."""
    return ("0x" if prefix else "") + data.hex()


def from_hex(text: str) -> bytes:
    """Parse a hex string, tolerating an optional 0x prefix."""
    if text.startswith(("0x", "0X")):
        text = text[2:]
    return bytes.fromhex(text)


def chunk_bytes(data: bytes, size: int) -> Iterable[bytes]:
    """Yield successive ``size``-byte chunks of ``data`` (last may be short)."""
    if size <= 0:
        raise ValueError("chunk size must be positive")
    for start in range(0, len(data), size):
        yield data[start : start + size]
