"""A worker on a light-weight node, with off-chain task data.

Footnotes 12 and 13 of the paper sketch two deployment optimizations:
workers need not run full nodes, and data-intensive tasks should keep
their payloads (images, audio) off-chain.  This example runs both:

1. the requester stores the task's image in a content-addressed
   off-chain store and publishes only the 32-byte reference on-chain;
2. the worker fetches + integrity-checks the image, submits his
   annotation, and then — tracking *headers only* — verifies via a
   Merkle inclusion proof that his submission made it into the chain,
   without trusting the full node that served the proof.

Run:  python examples/light_client_worker.py
"""

from __future__ import annotations

import repro.contracts  # noqa: F401
from repro.chain.light import LightClient, serve_inclusion_proof
from repro.chain.offchain import ContentStore, content_reference, parse_content_reference
from repro.core import MajorityVotePolicy, Requester, Worker, ZebraLancerSystem


def main() -> None:
    system = ZebraLancerSystem(profile="test", backend_name="mock")
    store = ContentStore()

    # --- requester: image off-chain, reference on-chain -----------------------
    image = b"\x89PNG...pretend this is 37kB of zebra..." * 1000
    image_id = store.put(image)
    requester = Requester(system, "museum@example.org")
    task = requester.publish_task(
        MajorityVotePolicy(num_choices=4),
        description=content_reference(image_id),
        num_answers=1,
        budget=500,
    )
    on_chain_description = system.node.call(task.address, "get_params")["description"]
    print(f"image: {len(image)} bytes off-chain; on-chain reference: "
          f"{len(on_chain_description)} bytes")

    # --- worker: fetch + verify the payload, then answer ------------------------
    worker = Worker(system, "annotator@example.org")
    params = worker.read_task(task.address)
    reference = parse_content_reference(params.description)
    assert reference is not None
    fetched = store.get(reference)  # raises IntegrityError if tampered
    assert fetched == image
    print("worker fetched and integrity-checked the task payload")
    record = worker.submit_answer(task, [1])
    assert record.receipt.success

    # --- the worker's light client: headers only ---------------------------------
    full_node = system.node
    light = LightClient(full_node.engine, full_node.block_by_number(0).header)
    synced = light.sync_from(full_node)
    print(f"light client synced {synced} headers (height {light.height}); "
          "it validated every PoA seal itself")

    tx_hash = record.receipt.tx_hash
    served = serve_inclusion_proof(full_node, tx_hash)
    assert served is not None
    proof, block_number = served
    assert light.verify_transaction_inclusion(proof, block_number)
    print(f"inclusion of the submission in block {block_number} verified "
          f"against a header with a {len(proof.siblings)}-hash Merkle branch")

    # Tampered proofs are caught.
    from repro.chain.txtrie import InclusionProof
    from repro.crypto.hashing import sha256

    forged = InclusionProof(tx_hash=sha256(b"lie"), index=proof.index,
                            siblings=proof.siblings)
    assert not light.verify_transaction_inclusion(forged, block_number)
    print("a forged proof from a lying full node was rejected — trustless.")

    # Settlement proceeds as usual.
    assert requester.evaluate_and_reward(task).success
    print(f"task settled: rewards {task.rewards()}")


if __name__ == "__main__":
    main()
