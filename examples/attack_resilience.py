"""Attack gauntlet: ZebraLancer vs the adversaries it was designed for.

Runs each attack from the paper's security analysis (Section V-C)
against a live deployment and shows the defence holding, then runs the
same misbehaviours against the centralized and naive-decentralized
baselines to show they succeed there.

Run:  python examples/attack_resilience.py
"""

from __future__ import annotations

import repro.contracts  # noqa: F401
from repro.core import MajorityVotePolicy, Requester, Worker, ZebraLancerSystem
from repro.core.attacks import (
    FalseReportingRequester,
    FreeRiderWorker,
    MultiSubmissionWorker,
    SelfColludingRequester,
)
from repro.core.baselines import CentralizedPlatform, NaiveDecentralizedPlatform


def zebralancer_defences() -> None:
    print("=" * 78)
    print("ZEBRALANCER UNDER ATTACK")
    print("=" * 78)
    system = ZebraLancerSystem(profile="test", backend_name="mock")
    policy = MajorityVotePolicy(num_choices=4)

    # --- multi-submission: one identity, many addresses ------------------------
    requester = Requester(system, "honest-requester")
    task = requester.publish_task(policy, "multi-submission target",
                                  num_answers=3, budget=3_000,
                                  answer_window=60)
    sybil = MultiSubmissionWorker(system, "greedy-worker")
    receipts = sybil.submit_many(task, [[1], [1], [1]])
    outcomes = ["accepted" if r.success else "dropped" for r in receipts]
    print(f"[multi-submission] 3 attempts from fresh addresses: {outcomes}")
    assert outcomes == ["accepted", "dropped", "dropped"]
    print("  -> common-prefix linkability caught the clones "
          "(Link(pi_i, pi_*) on equal t1 tags)\n")

    # --- free-riding: copy a pending ciphertext from the mempool -----------------
    honest = Worker(system, "diligent-worker")
    honest_record = honest.submit_answer(task, [2])
    assert honest_record.receipt.success
    rider = FreeRiderWorker(system, "free-rider")
    wires = system.node.call(task.address, "get_ciphertexts")
    copy_receipt = rider.submit_copied_ciphertext(task.address, wires[-1])
    print(f"[free-riding] verbatim ciphertext copy: "
          f"{'accepted' if copy_receipt.success else 'rejected'} "
          f"({copy_receipt.error})")
    assert not copy_receipt.success
    print("  -> duplicates rejected; the rider cannot decrypt-and-rephrase "
          "(semantic security)\n")

    # --- false reporting: pay less than the policy owes ----------------------------
    cheater = FalseReportingRequester(system, "stingy-requester")
    cheat_task = cheater.publish_task(policy, "false-reporting target",
                                      num_answers=3, budget=3_000)
    crowd = [Worker(system, f"crowd-{i}") for i in range(3)]
    for worker, vote in zip(crowd, [0, 0, 3]):
        worker.submit_answer(cheat_task, [vote])
    outcome = cheater.attempt_cheating_instruction(cheat_task, [0, 0, 0])
    print(f"[false-reporting] cheating instruction: {outcome}")
    assert outcome == "prover-refused"
    forged = cheater.attempt_forged_proof(cheat_task, [0, 0, 0])
    print(f"[false-reporting] forged proof on-chain: "
          f"{'accepted' if forged.success else 'rejected'} ({forged.error})")
    assert not forged.success
    # ... and stonewalling just triggers the timeout even-split:
    cheater.stonewall(cheat_task)
    deadline = system.node.call(cheat_task.address, "answer_deadline")
    while system.testnet.height <= deadline + cheat_task.params.instruction_window:
        system.mine()
    from repro.chain.transaction import Transaction, encode_call
    poker = crowd[0]
    finalize = Transaction(
        nonce=system.node.nonce_of(
            poker.submissions[-1].account_address), gas_price=1,
        gas_limit=10_000_000, to=cheat_task.address, value=0,
        data=encode_call("finalize_timeout", []),
    )
    from repro.core.anonymity import derive_one_task_account
    account = derive_one_task_account(
        poker._seed, f"task:{cheat_task.address.hex()}")
    receipt = system.send_and_confirm(finalize.sign(account.keypair))
    assert receipt.success, receipt.error
    print(f"[false-reporting] stonewalling: timeout fired, even split "
          f"{cheat_task.rewards()} (phase={cheat_task.phase()})\n")

    # --- self-collusion: the requester answers her own task --------------------------
    colluder = SelfColludingRequester(system, "colluding-requester")
    own_task = colluder.publish_task(policy, "self-collusion target",
                                     num_answers=3, budget=3_000)
    collusion = colluder.attempt_colluding_answer(own_task, [3])
    print(f"[self-collusion] requester answering her own task: "
          f"{'accepted' if collusion.success else 'dropped'} ({collusion.error})")
    assert not collusion.success
    print("  -> her answer links to pi_R (same prefix, same certificate)\n")


def baseline_failures() -> None:
    print("=" * 78)
    print("THE SAME ATTACKS AGAINST THE BASELINES")
    print("=" * 78)
    policy = MajorityVotePolicy(num_choices=4)

    # Centralized arbiter: false reporting succeeds and data leaks.
    platform = CentralizedPlatform()
    platform.post_task("t1", budget=3_000)
    for vote in ([1], [1], [2]):
        platform.submit("t1", vote)
    fair = policy.compute_rewards(platform.answers("t1"), 3_000)
    outcome = platform.settle("t1", [0, 0, 0])  # requester pays nobody
    print(f"[centralized] policy owed {fair}, requester paid "
          f"{outcome.payments} — false-reporting succeeded")
    print(f"[centralized] platform read {len(platform.observed_plaintexts)} "
          "plaintext answers — total data exposure")

    # Naive decentralized: the free-rider copies a pending plaintext answer.
    naive = NaiveDecentralizedPlatform(policy, budget=3_000, num_answers=3)
    naive.broadcast("honest-1", [1])
    naive.broadcast("honest-2", [1])
    stolen = naive.visible_pending_answers()[0]
    naive.broadcast("free-rider", list(stolen))  # undetectable copy
    naive.mine()
    outcome = naive.settle()
    rider_pay = outcome.payments[naive.senders().index("free-rider")]
    print(f"[naive chain] free-rider copied a pending answer and earned "
          f"{rider_pay} — free-riding succeeded")


def main() -> None:
    zebralancer_defences()
    baseline_failures()
    print("\nZebraLancer blocked every attack; both baselines failed.")


if __name__ == "__main__":
    main()
