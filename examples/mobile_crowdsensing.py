"""Mobile crowdsensing with EM quality estimation and unlinkable re-use.

The paper's introduction motivates crowdsensing (Waze-style traffic
reports) where participation history itself is sensitive: "if a worker
frequently joins traffic monitoring tasks, anyone can read the
blockchain ledger and figure out location traces of them."

This example runs two sensing campaigns over the *same* sensor pool:

1. a multi-item road-condition survey rewarded by Dawid–Skene EM truth
   inference (the estimation-maximization incentives of [9-11], running
   under the ideal-SNARK backend — see DESIGN.md);
2. a congestion-level majority poll (fully Groth16-provable policy).

It then demonstrates the privacy claim: the on-chain transcripts of the
two tasks share no addresses and no linkable attestation tags, even
though the same five workers served both.

Run:  python examples/mobile_crowdsensing.py
"""

from __future__ import annotations

import random

import repro.contracts  # noqa: F401
from repro.core import (
    DawidSkeneEMPolicy,
    MajorityVotePolicy,
    Requester,
    Worker,
    ZebraLancerSystem,
)

NUM_SENSORS = 5
ROAD_SEGMENTS = 6        # items in the survey
CONDITIONS = 3           # 0=clear, 1=wet, 2=icy
TRUE_CONDITIONS = [0, 1, 1, 2, 0, 1]


def main() -> None:
    system = ZebraLancerSystem(profile="test", backend_name="mock")
    city = Requester(system, "city-traffic-dept@example.gov")
    sensors = [Worker(system, f"vehicle-{i}@fleet.example") for i in range(NUM_SENSORS)]
    rng = random.Random(7)

    # ---- Campaign 1: road-condition survey, EM-scored --------------------------
    survey_policy = DawidSkeneEMPolicy(
        num_choices=CONDITIONS, num_items=ROAD_SEGMENTS, iterations=8
    )
    survey = city.publish_task(
        survey_policy,
        description="report the surface condition of road segments 0-5",
        num_answers=NUM_SENSORS,
        budget=50_000,
    )
    for index, sensor in enumerate(sensors):
        noise = 0.15 + 0.1 * index  # heterogeneous sensor quality
        report = [
            truth if rng.random() > noise else rng.randrange(CONDITIONS)
            for truth in TRUE_CONDITIONS
        ]
        sensor.submit_answer(survey, report)
    receipt = city.evaluate_and_reward(survey)
    assert receipt.success, receipt.error

    answers, _, _ = city.decrypt_answers(survey)
    truths, accuracies = survey_policy.infer(answers)
    print("campaign 1 (road survey, Dawid-Skene EM):")
    print(f"  inferred conditions {truths} (ground truth {TRUE_CONDITIONS})")
    for sensor, accuracy, reward in zip(sensors, accuracies, survey.rewards()):
        print(f"  {sensor.identity}: estimated accuracy {accuracy:.2f}, "
              f"reward {reward}")

    # ---- Campaign 2: congestion poll, majority-scored ----------------------------
    poll_policy = MajorityVotePolicy(num_choices=4)
    poll = city.publish_task(
        poll_policy,
        description="congestion at junction 12? 0=free 1=busy 2=jammed 3=closed",
        num_answers=NUM_SENSORS,
        budget=25_000,
    )
    for sensor in sensors:
        level = 1 if rng.random() < 0.8 else 2
        sensor.submit_answer(poll, [level])
    receipt = city.evaluate_and_reward(poll)
    assert receipt.success, receipt.error
    print(f"\ncampaign 2 (congestion poll): rewards {poll.rewards()}")

    # ---- The anonymity claim, checked against the ledger ---------------------------
    node = system.node
    survey_addresses = set(node.call(survey.address, "get_submitters"))
    poll_addresses = set(node.call(poll.address, "get_submitters"))
    shared_addresses = survey_addresses & poll_addresses
    survey_tags = set(node.call(survey.address, "get_tags"))
    poll_tags = set(node.call(poll.address, "get_tags"))
    print("\nunlinkability across campaigns (same 5 sensors served both):")
    print(f"  shared one-task addresses: {len(shared_addresses)} (expect 0)")
    print(f"  shared attestation tags:   {len(survey_tags & poll_tags)} (expect 0)")
    assert not shared_addresses and not (survey_tags & poll_tags)
    print("nothing on the ledger links the two campaigns' participants.")


if __name__ == "__main__":
    main()
