"""The paper's Section VI experiment: image annotation at five sizes.

Deploys five task contracts collecting 3, 5, 7, 9 and 11 answers from
anonymous-yet-accountable workers (majority-vote incentive of [10]),
exactly like the deployment in the Ethereum test net, and reports the
per-task outcome: who got paid, gas costs, and on-chain storage.

Run:  python examples/image_annotation.py [--backend groth16]
"""

from __future__ import annotations

import argparse
import random

import repro.contracts  # noqa: F401
from repro.core import MajorityVotePolicy, Requester, Worker, ZebraLancerSystem
from repro.core.metrics import humanize_bytes

WORKER_COUNTS = (3, 5, 7, 9, 11)
NUM_CHOICES = 4
GROUND_TRUTH = 1  # "zebra"


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--backend", default="mock", choices=["mock", "groth16"])
    parser.add_argument("--profile", default="test")
    args = parser.parse_args()

    system = ZebraLancerSystem(profile=args.profile, backend_name=args.backend)
    requester = Requester(system, "annotation-lab@example.com")
    # A pool of 11 registered workers, reused across all five tasks —
    # their cross-task participation stays unlinkable on-chain.
    pool = [Worker(system, f"annotator-{i}@example.com") for i in range(max(WORKER_COUNTS))]
    policy = MajorityVotePolicy(num_choices=NUM_CHOICES)
    rng = random.Random(42)

    print(f"{'n':>3} {'majority':>9} {'correct paid':>13} {'budget':>8} "
          f"{'per-answer gas':>15} {'ciphertext':>11}")
    for n in WORKER_COUNTS:
        budget = 1_000 * n
        task = requester.publish_task(
            policy,
            description=f"annotate image (n={n}): 0=horse 1=zebra 2=donkey 3=mule",
            num_answers=n,
            budget=budget,
            answer_window=4 * n,
        )
        # ~75% accurate annotators (the quality regime of [10]).
        gas_samples = []
        for worker in pool[:n]:
            vote = GROUND_TRUTH if rng.random() < 0.75 else rng.randrange(NUM_CHOICES)
            record = worker.submit_answer(task, [vote])
            gas_samples.append(record.receipt.gas_used)
        answers, _, _ = requester.decrypt_answers(task)
        majority = policy.majority_value(answers)
        receipt = requester.evaluate_and_reward(task)
        assert receipt.success, receipt.error
        rewards = task.rewards()
        paid = sum(1 for r in rewards if r > 0)
        wires = system.node.call(task.address, "get_ciphertexts")
        ct_bytes = sum(len(w) for w in wires) // len(wires)
        print(f"{n:>3} {majority if majority is not None else '-':>9} "
              f"{paid:>13} {budget:>8} {sum(gas_samples)//n:>15} "
              f"{humanize_bytes(ct_bytes):>11}")
        assert task.phase() == "completed"
    system.testnet.assert_consensus()
    print("\nall five contracts settled; every node agrees on the ledger.")


if __name__ == "__main__":
    main()
