"""Quickstart: one crowdsourcing task, end to end, in ~5 seconds.

Boots a simulated Ethereum-style test net, a registration authority and
the SNARK establishments, publishes an image-annotation task, has three
anonymous workers answer it, and lets the requester prove her reward
instruction to the contract.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import repro.contracts  # noqa: F401  (registers the on-chain programs)
from repro.core import MajorityVotePolicy, Requester, Worker, ZebraLancerSystem


def main() -> None:
    # 1. Bootstrap: chain + RA + registry contract + SNARK public params.
    #    The "mock" backend is the ideal-SNARK functionality (fast);
    #    switch to backend_name="groth16" for real pairing-based proofs.
    system = ZebraLancerSystem(
        profile="test", cert_mode="merkle", backend_name="mock"
    )
    print(f"chain height {system.testnet.height}, "
          f"registry at 0x{system.registry_address.hex()}")

    # 2. Register: one credential per unique real-world identity.
    requester = Requester(system, "alice@example.com")
    workers = [Worker(system, f"worker-{i}@example.com") for i in range(3)]

    # 3. TaskPublish: the requester deposits the budget into the task
    #    contract and anonymously authenticates her one-task address.
    policy = MajorityVotePolicy(num_choices=4)
    task = requester.publish_task(
        policy,
        description="Which animal is in image #1337? 0=horse 1=zebra 2=donkey 3=mule",
        num_answers=3,
        budget=3_000,
    )
    print(f"task deployed at 0x{task.address.hex()}, phase={task.phase()}")

    # 4. AnswerCollection: workers validate the contract, then submit
    #    encrypted, anonymously-authenticated answers from fresh addresses.
    votes = [1, 1, 2]  # two workers say zebra, one says donkey
    for worker, vote in zip(workers, votes):
        record = worker.submit_answer(task, [vote])
        print(f"  {worker.identity} submitted anonymously "
              f"(gas {record.receipt.gas_used})")

    # 5. Reward: the requester decrypts off-chain, computes rewards per
    #    the announced policy, and proves the instruction to the contract.
    balances_before = [w.reward_received(task.address) for w in workers]
    receipt = requester.evaluate_and_reward(task)
    assert receipt.success, receipt.error
    print(f"reward instruction accepted, task phase={task.phase()}")

    for worker, before in zip(workers, balances_before):
        earned = worker.reward_received(task.address) - before
        print(f"  {worker.identity} earned {earned}")

    system.testnet.assert_consensus()
    print("all nodes in consensus — done.")


if __name__ == "__main__":
    main()
